"""Process-pool scheduler for simulation jobs, with fault tolerance.

The unit of *accounting* is a :class:`SimJob` — one (workload,
instructions, predictor-key) triple, exactly the granularity of the
on-disk result cache.  :func:`run_jobs` takes any number of jobs and:

1. deduplicates them (figures share baselines like ``tsl64``);
2. answers what it can from the in-memory and on-disk caches without
   touching the pool (re-running anything a checkpoint journal proves
   corrupt);
3. coalesces jobs already in flight from an earlier call instead of
   dispatching them twice;
4. groups the rest into :class:`_Task` units — jobs sharing a
   (workload, instructions) pair, which therefore decode the *same*
   trace — and fans the tasks across a process pool, where each worker
   runs the batched cached runner (``runner.run_batch``: one decode
   pass updates every predictor in the group, bit-identical to running
   them separately; results land in the shared disk cache atomically);
5. seeds the parent's in-memory cache with every result, so subsequent
   serial code (``get_result``) never re-simulates.

``REPRO_BATCH=0`` disables the grouping, making every task a single
job (the pre-batching behaviour, and the granularity the fault plan's
indices historically referred to).

Tasks execute through a pluggable *backend*
(:mod:`repro.parallel.backend`): the default ``LocalBackend`` is the
process pool described below, byte-identical to the pre-backend
executor; ``TCPBackend`` shards the same tasks across
``python -m repro.worker`` processes on any host.  Selection is via
``run_jobs(..., backend=)``, ``REPRO_BACKEND``, or the CLI
``--backend`` / ``--workers`` flags.

Failures do not abort the batch.  Each task runs under a
:class:`~repro.parallel.retry.RetryPolicy`: an attempt that raises is
retried with bounded, jittered exponential backoff; an attempt that
exceeds its timeout (``policy.timeout`` × the task's job count) has its
(hung) worker killed — the local pool is rebuilt, a TCP worker's
connection is surgically severed; a worker that dies mid-task
(OOM-kill, segfault, dead connection) strands its tasks, which are
retried without burning their own attempt budget (a task that keeps
*being held* by dying workers is eventually charged, so a poison task
cannot loop forever).  A retried task recovers incrementally: members
whose results were already published to the disk cache answer from it,
so only the unfinished remainder re-simulates.  A remote backend whose
last worker is gone (past a ``REPRO_BACKEND_GRACE`` rejoin window)
degrades to the local pool; if the local pool proves irrecoverable —
more rebuilds than ``policy.max_pool_rebuilds`` — the batch degrades to
serial in-process execution rather than failing.  Only a task that
exhausts ``max_attempts`` raises to the caller.

Every failure path is exercisable deterministically through
:mod:`repro.parallel.faults` (``REPRO_FAULTS``), and each recovery
emits a telemetry event (``parallel.retry`` / ``.timeout`` /
``.worker_lost`` / ``.pool_rebuild`` / ``.degraded``) so
``scripts/report.py`` can account for a bumpy run.

Workers inherit ``REPRO_*`` environment knobs from the parent, which is
what keeps parallel results bit-identical to serial runs: the same trace
generation, the same predictor construction, the same engine — retries
re-run the same pure computation, so a recovered batch equals a clean
one.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, CancelledError, Future, wait
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.parallel import backend as backend_mod
from repro.parallel import faults
from repro.parallel.backend import Backend, BackendBroken, WorkerLost
from repro.parallel.retry import RetryPolicy, backoff_delay
from repro.sim.results import SimulationResult


class SimJob(NamedTuple):
    """One simulation: a workload/instruction-budget/predictor triple."""

    workload: str
    key: str
    instructions: int


class _Task(NamedTuple):
    """The dispatch unit: jobs sharing one (workload, instructions) pair.

    All members decode the same trace, so a worker runs them as one
    batched pass (``runner.run_batch``).  The task is also the retry,
    fault-injection and timeout unit — its deadline scales with its job
    count — while journal records and result tickets stay per member.
    """

    jobs: Tuple[SimJob, ...]

    @property
    def workload(self) -> str:
        return self.jobs[0].workload

    @property
    def instructions(self) -> int:
        return self.jobs[0].instructions

    @property
    def keys(self) -> str:
        return ",".join(job.key for job in self.jobs)


def batching_enabled() -> bool:
    """True unless ``REPRO_BATCH=0`` opts out of shared-trace batching."""
    return os.environ.get("REPRO_BATCH", "1") != "0"


def _make_tasks(jobs: Sequence[SimJob]) -> List[_Task]:
    """Group jobs into tasks, preserving first-occurrence order.

    With batching disabled every job is its own task, which reproduces
    the historical one-future-per-job dispatch exactly (fault-plan
    indices included).
    """
    if not batching_enabled():
        return [_Task((job,)) for job in jobs]
    groups: Dict[Tuple[str, int], List[SimJob]] = {}
    for job in jobs:
        groups.setdefault((job.workload, job.instructions), []).append(job)
    return [_Task(tuple(group)) for group in groups.values()]


def _worker_count(env: str) -> Optional[int]:
    """Parse a ``REPRO_JOBS`` value; ``None`` means "use the CPU count".

    The variable is user input that reaches this code deep inside a run
    (possibly inside a worker), so a malformed value must degrade, not
    raise: anything non-integer or non-positive warns and falls back.
    """
    env = env.strip()
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        warnings.warn(
            f"REPRO_JOBS={env!r} is not an integer; "
            "falling back to the CPU count",
            RuntimeWarning, stacklevel=3)
        return None
    if value <= 0:
        warnings.warn(
            f"REPRO_JOBS={value} is not positive; "
            "falling back to the CPU count",
            RuntimeWarning, stacklevel=3)
        return None
    return value


def default_jobs() -> int:
    """Worker count: REPRO_JOBS if set and valid, else the CPU count."""
    count = _worker_count(os.environ.get("REPRO_JOBS", ""))
    if count is None:
        return os.cpu_count() or 1
    return count


def make_jobs(pairs: Iterable[Tuple[str, str]],
              instructions: Optional[int] = None) -> List[SimJob]:
    """Expand (workload, key) pairs into jobs at the experiment budget."""
    if instructions is None:
        from repro.experiments.common import experiment_instructions

        instructions = experiment_instructions()
    return [SimJob(w, k, instructions) for w, k in pairs]


def _simulate_task(task: _Task, fault: Optional[str] = None,
                   in_worker: bool = True) -> List[SimulationResult]:
    """Worker entry point: run the cached runner for one task.

    Module-level so it pickles; imports stay inside so the worker pays
    for them once, after the fork/spawn.  Workers inherit
    ``REPRO_TELEMETRY`` with the rest of the environment and write their
    events to their own per-pid JSONL file, which is what makes per-task
    wall time and worker utilization reportable after the run.

    A single-job task goes through ``runner.get_result`` — byte-for-byte
    the pre-batching worker behaviour — while a multi-job task runs one
    batched pass via ``runner.run_batch`` (members already in the disk
    cache, e.g. from an interrupted earlier attempt, are answered from
    it rather than re-simulated).  Either way the results are identical.

    ``fault`` is this attempt's share of the chaos plan, decided by the
    parent (see :mod:`repro.parallel.faults`); it fires before any work
    or cache write, so a faulted attempt leaves no partial state.
    """
    from repro.experiments import runner

    jobs = task.jobs
    faults.apply(fault, jobs[0] if len(jobs) == 1 else task, in_worker)
    timed = telemetry.enabled()
    start = time.perf_counter() if timed else 0.0
    if len(jobs) == 1:
        job = jobs[0]
        results = [runner.get_result(job.workload, job.key,
                                     job.instructions)]
    else:
        results = runner.run_batch(task.workload, [job.key for job in jobs],
                                   task.instructions)
    if timed:
        event = dict(workload=task.workload, key=task.keys,
                     instructions=task.instructions,
                     seconds=time.perf_counter() - start)
        if len(jobs) > 1:
            event["batched"] = len(jobs)
        telemetry.emit("parallel.job", **event)
    return results


class _Ticket:
    """A job's promised outcome, shared between submitter and coalescers.

    Unlike a pool ``Future``, a ticket survives retries and pool
    rebuilds: the owning caller may burn through several futures (and
    pools) before publishing the final result or error here, and every
    caller waiting on the same job observes only that final outcome.
    """

    __slots__ = ("_event", "_result", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Optional[SimulationResult] = None
        self._error: Optional[BaseException] = None

    @property
    def settled(self) -> bool:
        return self._event.is_set()

    def resolve(self, result: SimulationResult) -> None:
        self._result = result
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def wait(self) -> SimulationResult:
        self._event.wait()
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


# One pool per process, plus the jobs currently submitted to it.  The
# lock guards all of it; tickets stay registered until consumed so
# concurrent run_jobs calls (e.g. threaded test sessions) coalesce
# duplicates, and ``_pool_futures`` tracks the futures outstanding on
# the *current* pool so _get_pool knows when a resize is safe.
_lock = threading.Lock()
_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0
_pool_futures: Set[Future] = set()
_inflight: Dict[SimJob, _Ticket] = {}


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_workers
    if _pool is None or _pool_workers < workers:
        # An undersized pool can be replaced only while no futures are
        # outstanding on it.  Registered tickets alone must not pin it:
        # run_jobs registers the batch's tickets before execution ever
        # reaches here, so gating on _inflight would mean a first small
        # batch pins the pool at its size for the whole process.
        if _pool is not None and not _pool_futures:
            _pool.shutdown(wait=True)
            _pool = None
        if _pool is None:
            _pool = ProcessPoolExecutor(max_workers=workers)
            _pool_workers = workers
    return _pool


def _discard_pool(kill: bool = False) -> None:
    """Drop the current pool; with ``kill``, SIGKILL its workers first.

    Killing is for hung workers: ``shutdown`` would politely wait for a
    worker that will never answer, so the recovery path terminates the
    processes outright and builds a fresh pool.  Callers hold ``_lock``.
    """
    global _pool, _pool_workers
    pool, _pool, _pool_workers = _pool, None, 0
    _pool_futures.clear()
    if pool is None:
        return
    if kill:
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.kill()
            except Exception:
                pass
    pool.shutdown(wait=False)


def shutdown() -> None:
    """Tear down the worker pool (tests; end of a CLI run)."""
    with _lock:
        tickets = list(_inflight.values())
        _inflight.clear()
        _discard_pool()
    for ticket in tickets:
        if not ticket.settled:
            ticket.fail(CancelledError("parallel.shutdown()"))


class _TaskState:
    """Per-task retry bookkeeping for one owned batch.

    ``losses`` counts how often this task's worker died under it.
    Losses are normally free (collateral damage must not burn the
    victim's attempts), but a task that *keeps* killing its workers is
    indistinguishable from a poison task — past
    ``policy.max_pool_rebuilds`` losses it starts being charged, so it
    cannot reschedule forever.
    """

    __slots__ = ("attempts", "fault", "losses")

    def __init__(self) -> None:
        self.attempts = 0
        self.losses = 0
        self.fault = faults.assign_next()


def _error_kind(error: BaseException) -> str:
    """Telemetry label for an error: the remote original where known."""
    return getattr(error, "kind", None) or type(error).__name__


def _journal_record(journal, job: SimJob, result: SimulationResult) -> None:
    if journal is not None:
        journal.record_result((job.workload, job.key, job.instructions),
                              result)


def _run_serial_attempts(task: _Task, state: _TaskState, policy: RetryPolicy,
                         journal) -> List[SimulationResult]:
    """Run one task in-process, honouring its remaining retry budget."""
    while True:
        try:
            results = _simulate_task(task, state.fault.take(),
                                     in_worker=False)
        except KeyboardInterrupt:
            raise
        except Exception as error:
            state.attempts += 1
            if state.attempts >= policy.max_attempts:
                raise
            delay = backoff_delay(state.attempts, policy, key=task.jobs[0])
            telemetry.emit("parallel.retry", workload=task.workload,
                           key=task.keys, attempt=state.attempts,
                           delay=round(delay, 4), error=type(error).__name__,
                           where="serial")
            time.sleep(delay)
        else:
            for job, result in zip(task.jobs, results):
                _journal_record(journal, job, result)
            return results


def _execute_owned(tasks: Sequence[_Task], tickets: Dict[SimJob, _Ticket],
                   workers: int, policy: RetryPolicy, journal,
                   backend: Optional[Backend] = None,
                   on_result=None) -> int:
    """Drive every owned task to settled tickets; returns pool rebuilds.

    The loop dispatches ready tasks to the backend, waits for
    completions or the nearest deadline, and turns each failure into
    either a scheduled retry (with backoff) or settled errors.  Worker
    death and hung workers both end in a recovery — a local pool
    rebuild, or a surgical connection eviction on a remote backend;
    past the rebuild budget the remaining tasks finish serially in this
    process, and a remote backend with no workers left (after its
    rejoin grace) degrades to the local pool first.  A task's deadline
    is ``policy.timeout`` × its job count — it does the work of that
    many jobs in one pass, so the per-job budget simply accumulates.
    """
    from repro.parallel.backend.local import LocalBackend

    if backend is None:
        backend = LocalBackend(workers)
    states = {task: _TaskState() for task in tasks}
    waiting: Set[_Task] = set(tasks)
    not_before = {task: 0.0 for task in tasks}
    running: Dict[Future, _Task] = {}
    deadlines: Dict[Future, float] = {}
    rebuilds = 0
    degraded = False

    def settle_ok(task: _Task, results: Sequence[SimulationResult]) -> None:
        for job, result in zip(task.jobs, results):
            _journal_record(journal, job, result)
            tickets[job].resolve(result)
            if on_result is not None:
                on_result(job, result, "computed")

    def settle_error(task: _Task, error: BaseException) -> None:
        for job in task.jobs:
            tickets[job].fail(error)

    def schedule_retry(task: _Task, error: BaseException, kind: str,
                       charge: bool = True) -> None:
        """Queue another attempt, or settle the tickets with ``error``.

        ``charge=False`` is for collateral damage — a task whose worker
        died because a *different* task killed the pool keeps its own
        attempt budget intact.
        """
        state = states[task]
        if charge:
            state.attempts += 1
            if state.attempts >= policy.max_attempts:
                telemetry.emit("parallel.exhausted", workload=task.workload,
                               key=task.keys, attempts=state.attempts,
                               error=_error_kind(error))
                settle_error(task, error)
                return
            delay = backoff_delay(state.attempts, policy, key=task.jobs[0])
            telemetry.emit("parallel.retry", workload=task.workload,
                           key=task.keys, attempt=state.attempts,
                           delay=round(delay, 4), error=kind)
            not_before[task] = time.monotonic() + delay
        else:
            telemetry.emit("parallel.worker_lost", workload=task.workload,
                           key=task.keys)
            not_before[task] = 0.0
        waiting.add(task)

    def charge_loss(task: _Task) -> bool:
        """Whether this worker loss burns one of ``task``'s attempts."""
        state = states[task]
        state.losses += 1
        return state.losses > policy.max_pool_rebuilds

    def rebuild_pool(kill: bool) -> None:
        nonlocal rebuilds, degraded
        for future, task in running.items():
            if future.done() and not future.cancelled():
                # Completed between wait() returning and the rebuild:
                # that is a real outcome — settle it rather than
                # cancelling and re-running finished work.
                try:
                    results = future.result()
                except BrokenProcessPool as error:
                    schedule_retry(task, error, "worker_lost")
                except WorkerLost as error:
                    schedule_retry(task, error, "worker_lost",
                                   charge=charge_loss(task))
                except BaseException as error:
                    schedule_retry(task, error, _error_kind(error))
                else:
                    settle_ok(task, results)
                continue
            backend.cancel(future)
            schedule_retry(task, BrokenProcessPool("pool rebuilt"),
                           "worker_lost", charge=False)
        running.clear()
        deadlines.clear()
        rebuilds += 1
        backend.reset(kill=kill)
        telemetry.emit("parallel.pool_rebuild", rebuilds=rebuilds,
                       killed=kill)
        if rebuilds > policy.max_pool_rebuilds:
            degraded = True

    def degrade_to_local(reason: str) -> None:
        """Swap a dead remote backend for the local pool, mid-batch.

        In-flight submissions are collateral damage (their workers are
        gone or unreachable), so they reschedule without being charged;
        the replaced backend is closed hard — ``run_jobs`` closing it
        again later is a harmless no-op.
        """
        nonlocal backend
        for future, task in list(running.items()):
            backend.cancel(future)
            schedule_retry(task, WorkerLost(reason), "worker_lost",
                           charge=False)
        running.clear()
        deadlines.clear()
        telemetry.emit("backend.degraded", backend=backend.name, to="local",
                       reason=reason,
                       remaining=sum(len(t.jobs) for t in waiting))
        warnings.warn(f"{backend.name} backend degraded to local: {reason}",
                      RuntimeWarning, stacklevel=3)
        try:
            backend.close(kill=True)
        except Exception:
            pass
        backend = LocalBackend(workers)

    remote = backend.name != "local"
    while waiting or running:
        if degraded:
            break

        # A remote backend with nobody to run on cannot make progress:
        # give departed workers one ``grace`` window to (re)join, then
        # fall back to the local pool rather than stalling the batch.
        if remote and backend.workers() == 0:
            if not backend.wait_for_workers(1, timeout=backend.grace):
                degrade_to_local(
                    f"no workers for {backend.grace:.1f}s")
                remote = False
            continue

        # Dispatch tasks whose backoff has elapsed (original order, so
        # the fault plan's indices stay deterministic), keeping at most
        # one future in flight per backend worker.  The deadline starts
        # at submission, so a task queued behind a full pool would burn
        # its timeout budget waiting for a worker instead of running;
        # bounding in-flight work makes submission ≈ execution start.
        now = time.monotonic()
        slots = backend.workers() - len(running)
        ready = [task for task in tasks
                 if task in waiting and not_before[task] <= now]
        ready = ready[:max(0, slots)]
        if ready:
            try:
                for task in ready:
                    future = backend.submit(task,
                                            states[task].fault.take())
                    waiting.discard(task)
                    running[future] = task
                    if policy.timeout is not None:
                        deadlines[future] = (
                            time.monotonic()
                            + policy.timeout * len(task.jobs))
            except (BrokenProcessPool, BackendBroken, RuntimeError):
                # The pool died before accepting work (submit on a
                # broken/shut-down executor); tasks not yet submitted
                # are still in ``waiting``.
                rebuild_pool(kill=True)
                continue

        if not running:
            # Everyone is backing off; sleep until the earliest retry.
            pause = (min(not_before[task] for task in waiting)
                     - time.monotonic())
            if pause > 0:
                time.sleep(min(pause, 0.1))
            continue

        # Wait for a completion, but wake for the nearest deadline or
        # the nearest *future* backoff expiry, whichever comes first.
        # A task that is already dispatchable but slot-starved is not a
        # wakeup — only a completion can free its slot, so counting it
        # would just busy-poll wait().  On a remote backend the wait is
        # additionally capped so the loop re-checks worker liveness: a
        # queued submission's future settles only when a worker pulls
        # it, so if every worker died while idle nothing would ever
        # complete and an uncapped wait would block forever.
        now = time.monotonic()
        wakeups = [d - now for d in deadlines.values()]
        wakeups += [not_before[task] - now for task in waiting
                    if not_before[task] > now]
        timeout = max(0.01, min(wakeups)) if wakeups else None
        if remote:
            timeout = 0.25 if timeout is None else min(timeout, 0.25)
        done, _ = wait(list(running), timeout=timeout,
                       return_when=FIRST_COMPLETED)
        if done:
            backend.reap(done)

        broken = False
        for future in done:
            task = running.pop(future)
            deadlines.pop(future, None)
            try:
                results = future.result()
            except BrokenProcessPool as error:
                # This task's worker died mid-attempt: that *is* this
                # task's failure, so it burns an attempt — but the pool
                # is gone for everyone, handled below.
                broken = True
                schedule_retry(task, error, "worker_lost")
            except WorkerLost as error:
                # A dead connection strands only its own task; other
                # workers keep running, so no pool-wide recovery — the
                # task reschedules for free (until it looks poisonous).
                schedule_retry(task, error, "worker_lost",
                               charge=charge_loss(task))
            except CancelledError as error:
                schedule_retry(task, error, "cancelled", charge=False)
            except BaseException as error:
                schedule_retry(task, error, _error_kind(error))
            else:
                settle_ok(task, results)
        if broken:
            rebuild_pool(kill=True)
            continue

        # Enforce deadlines: a hung worker never returns.  A remote
        # backend evicts surgically — severing just that worker's
        # connection — while the local pool can only be killed and
        # rebuilt wholesale.
        now = time.monotonic()
        expired = [future for future, deadline in deadlines.items()
                   if deadline <= now]
        if expired:
            surgical = True
            for future in expired:
                task = running.pop(future)
                deadlines.pop(future)
                telemetry.emit("parallel.timeout", workload=task.workload,
                               key=task.keys, timeout=policy.timeout,
                               attempt=states[task].attempts + 1)
                schedule_retry(task, TimeoutError(
                    f"task {task.workload}/{task.keys} exceeded "
                    f"{policy.timeout * len(task.jobs)}s"), "timeout")
                surgical = backend.evict(future) and surgical
            if not surgical:
                rebuild_pool(kill=True)

    if degraded and (waiting or running):
        remaining = [task for task in tasks
                     if task in waiting or task in set(running.values())]
        telemetry.emit("parallel.degraded",
                       remaining=sum(len(t.jobs) for t in remaining),
                       rebuilds=rebuilds)
        running.clear()
        for task in remaining:
            waiting.discard(task)
            try:
                settle_ok(task, _run_serial_attempts(task, states[task],
                                                     policy, journal=None))
            except KeyboardInterrupt:
                raise
            except Exception as error:
                settle_error(task, error)
    return rebuilds


def run_jobs(jobs: Sequence[SimJob],
             max_workers: Optional[int] = None,
             policy: Optional[RetryPolicy] = None,
             journal=None,
             backend=None,
             on_result=None) -> Dict[SimJob, SimulationResult]:
    """Run every job, in parallel where possible; returns job -> result.

    Results are identical to calling ``runner.get_result`` for each job
    serially — the parallel path (including every retry, pool rebuild
    and degradation to serial) only changes *where* the simulation runs,
    never what it computes.

    ``policy`` defaults to :meth:`RetryPolicy.from_env` (``REPRO_RETRIES``
    and friends).  ``journal``, when given, is a checkpoint journal (see
    :mod:`repro.experiments.journal`): completed jobs are recorded as
    they finish, and a cached result whose digest contradicts the
    journal is treated as corrupt and re-run instead of trusted.

    ``backend`` selects where tasks execute: a name (``"local"`` /
    ``"tcp"``), a ready :class:`~repro.parallel.backend.Backend`
    instance (caller-owned — it is not closed here), or ``None`` to
    consult ``REPRO_BACKEND`` (default local).  An unknown or
    unstartable backend warns and falls back to local rather than
    failing the batch, like every other malformed ``REPRO_*`` knob.

    ``on_result``, when given, is called exactly once per unique job as
    its outcome settles — ``on_result(job, result, source)`` with
    ``source`` one of ``"cache"`` (answered from the result cache
    before dispatch), ``"computed"`` (simulated by this call) or
    ``"coalesced"`` (settled by a concurrent ``run_jobs`` this call
    piggybacked on).  The callback may run on a worker-driving thread;
    it must not block.  This is how the sweep server streams results to
    clients while the rest of a batch is still running.  A callback
    exception is contained (warn + continue) — a broken subscriber must
    not fail the batch.
    """
    from repro.experiments import runner

    if max_workers is None:
        max_workers = default_jobs()
    if policy is None:
        policy = RetryPolicy.from_env()

    backend_obj = backend if isinstance(backend, Backend) else None
    if backend_obj is not None:
        backend_name = backend_obj.name
    elif isinstance(backend, str):
        backend_name = backend.strip() or "local"
    else:
        backend_name = (os.environ.get(backend_mod.ENV_BACKEND, "local")
                        .strip() or "local")
    resolved_local = backend_obj is None and backend_name == "local"

    telemetry_on = telemetry.enabled()
    batch_start = time.perf_counter() if telemetry_on else 0.0

    def emit_batch(pending: int, dispatched: int, workers: int,
                   rebuilds: int = 0) -> None:
        if telemetry_on:
            telemetry.emit(
                "parallel.run_jobs", requested=len(jobs), unique=len(unique),
                cache_hits=len(unique) - pending,
                coalesced=pending - dispatched, dispatched=dispatched,
                workers=workers, pool_rebuilds=rebuilds,
                seconds=time.perf_counter() - batch_start)

    unique: List[SimJob] = list(dict.fromkeys(jobs))
    results: Dict[SimJob, SimulationResult] = {}

    reported: Set[SimJob] = set()

    def notify(job: SimJob, result: SimulationResult, source: str) -> None:
        if on_result is None or job in reported:
            return
        reported.add(job)
        try:
            on_result(job, result, source)
        except Exception as error:
            warnings.warn(f"on_result callback failed for {job}: {error}",
                          RuntimeWarning, stacklevel=2)

    # Cache peek: anything already in the memory or disk cache skips the
    # pool entirely (and gets promoted into the memory cache) — unless
    # the journal proves the cached bytes wrong, in which case the entry
    # is dropped and the job re-run.
    pending: List[SimJob] = []
    for job in unique:
        cached = runner.peek_result(job.workload, job.key, job.instructions)
        if cached is not None and journal is not None:
            verdict = journal.matches(
                (job.workload, job.key, job.instructions), cached)
            if verdict is False:
                telemetry.emit("parallel.cache_corrupt",
                               workload=job.workload, key=job.key,
                               instructions=job.instructions)
                runner.drop_result(job.workload, job.key, job.instructions)
                cached = None
        if cached is not None:
            _journal_record(journal, job, cached)
            results[job] = cached
            notify(job, cached, "cache")
        else:
            pending.append(job)

    if not pending:
        emit_batch(pending=0, dispatched=0, workers=0)
        return {job: results[job] for job in jobs}

    if (resolved_local and max_workers <= 1) or len(pending) == 1:
        # Serial fallback: no pool spin-up for a single miss or -j 1.
        # A remote backend ignores -j/-REPRO_JOBS (its parallelism is
        # its worker count, not this host's CPUs), so only the
        # single-miss case short-circuits it.
        # Grouping still applies — a -j 1 figure run decodes each trace
        # once — _simulate_task emits the per-task telemetry here too
        # (the "worker" is simply this process), and the retry policy
        # still applies.
        for task in _make_tasks(pending):
            outcome = _run_serial_attempts(task, _TaskState(), policy,
                                           journal)
            for job, result in zip(task.jobs, outcome):
                results[job] = result
                notify(job, result, "computed")
        emit_batch(pending=len(pending), dispatched=len(pending), workers=1)
        return {job: results[job] for job in jobs}

    owned: Dict[SimJob, _Ticket] = {}
    tickets: Dict[SimJob, _Ticket] = {}
    with _lock:
        workers = min(max_workers, len(pending))
        for job in pending:
            ticket = _inflight.get(job)
            if ticket is None:
                ticket = _Ticket()
                _inflight[job] = ticket
                owned[job] = ticket
            tickets[job] = ticket

    rebuilds = 0
    owned_backend = None
    try:
        if owned:
            if backend_obj is None and not resolved_local:
                # The batch needs a remote backend: build it now (not
                # for cache-only calls), and degrade to local if it
                # cannot start — a bad REPRO_BACKEND* value must bend
                # the run, not break it.
                try:
                    owned_backend = backend_mod.create(backend_name, workers)
                except (ValueError, BackendBroken) as error:
                    warnings.warn(
                        f"backend {backend_name!r} unavailable ({error}); "
                        "falling back to local", RuntimeWarning,
                        stacklevel=2)
                    telemetry.emit("backend.degraded", backend=backend_name,
                                   to="local", reason=_error_kind(error))
                backend_obj = owned_backend
            rebuilds = _execute_owned(_make_tasks(list(owned)), tickets,
                                      workers, policy, journal,
                                      backend=backend_obj, on_result=notify)
    finally:
        if owned_backend is not None:
            try:
                owned_backend.close()
            except Exception:
                pass
        with _lock:
            for job, ticket in owned.items():
                if _inflight.get(job) is ticket:
                    del _inflight[job]
        # Never strand a coalescer: any ticket the owner could not
        # settle (an exception escaping the retry loop, KeyboardInterrupt)
        # fails loudly instead of blocking forever.
        for ticket in owned.values():
            if not ticket.settled:
                ticket.fail(CancelledError("executor aborted"))

    for job in pending:
        result = tickets[job].wait()
        # Seed the parent's memory cache: the worker wrote the disk
        # cache, but this process should not have to re-read it.
        runner.seed_result(job.workload, job.key, job.instructions, result)
        results[job] = result
        notify(job, result, "coalesced")

    emit_batch(pending=len(pending), dispatched=len(owned), workers=workers,
               rebuilds=rebuilds)
    return {job: results[job] for job in jobs}
