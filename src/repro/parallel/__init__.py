"""Parallel experiment execution.

Fans simulation jobs across worker processes with cache-aware dispatch:
jobs whose results are already cached never reach the pool, duplicate
jobs are coalesced, and completed results land in both the on-disk
result cache and the calling process's in-memory cache.
"""

from repro.parallel.executor import (
    SimJob,
    default_jobs,
    make_jobs,
    run_jobs,
    shutdown,
)

__all__ = ["SimJob", "default_jobs", "make_jobs", "run_jobs", "shutdown"]
