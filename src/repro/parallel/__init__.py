"""Parallel experiment execution.

Fans simulation jobs across worker processes with cache-aware dispatch:
jobs whose results are already cached never reach the pool, duplicate
jobs are coalesced, and completed results land in both the on-disk
result cache and the calling process's in-memory cache.  Jobs sharing
a (workload, instructions) pair are grouped into one batched task that
decodes the trace once for all of them (``REPRO_BATCH=0`` opts out).

Execution is pluggable (:mod:`repro.parallel.backend`): the default
local process pool, or a TCP work queue (``REPRO_BACKEND=tcp``) whose
workers — ``python -m repro.worker`` — may live on any host and share
traces through the content-addressed store.

The scheduler is fault-tolerant: failed attempts retry with bounded
jittered backoff (:mod:`repro.parallel.retry`), hung workers are timed
out and their pool rebuilt (a hung TCP worker just loses its
connection), dead workers are detected and the stranded jobs
re-dispatched, a remote backend with no workers left degrades to the
local pool, and an irrecoverable pool degrades to serial in-process
execution.  Every failure path can be forced deterministically via
:mod:`repro.parallel.faults` (``REPRO_FAULTS``).
"""

from repro.parallel import backend, faults
from repro.parallel.backend import (
    Backend,
    BackendBroken,
    RemoteTaskError,
    WorkerLost,
)
from repro.parallel.executor import (
    SimJob,
    batching_enabled,
    default_jobs,
    make_jobs,
    run_jobs,
    shutdown,
)
from repro.parallel.retry import RetryPolicy, backoff_delay

__all__ = [
    "Backend",
    "BackendBroken",
    "RemoteTaskError",
    "RetryPolicy",
    "SimJob",
    "WorkerLost",
    "backend",
    "backoff_delay",
    "batching_enabled",
    "default_jobs",
    "faults",
    "make_jobs",
    "run_jobs",
    "shutdown",
]
