"""Parallel experiment execution.

Fans simulation jobs across worker processes with cache-aware dispatch:
jobs whose results are already cached never reach the pool, duplicate
jobs are coalesced, and completed results land in both the on-disk
result cache and the calling process's in-memory cache.  Jobs sharing
a (workload, instructions) pair are grouped into one batched task that
decodes the trace once for all of them (``REPRO_BATCH=0`` opts out).

The scheduler is fault-tolerant: failed attempts retry with bounded
jittered backoff (:mod:`repro.parallel.retry`), hung workers are timed
out and their pool rebuilt, dead workers are detected and the stranded
jobs re-dispatched, and an irrecoverable pool degrades to serial
in-process execution.  Every failure path can be forced
deterministically via :mod:`repro.parallel.faults` (``REPRO_FAULTS``).
"""

from repro.parallel import faults
from repro.parallel.executor import (
    SimJob,
    batching_enabled,
    default_jobs,
    make_jobs,
    run_jobs,
    shutdown,
)
from repro.parallel.retry import RetryPolicy, backoff_delay

__all__ = [
    "SimJob",
    "RetryPolicy",
    "backoff_delay",
    "batching_enabled",
    "default_jobs",
    "faults",
    "make_jobs",
    "run_jobs",
    "shutdown",
]
