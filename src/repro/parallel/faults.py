"""Deterministic fault injection for the parallel executor.

Chaos testing hook: a *fault plan* names which dispatched jobs fail and
how, so every failure path the executor claims to handle — a job that
raises, a job that hangs past its timeout, a worker that dies mid-job —
is exercisable deterministically in tests and in CI, with no sleeps-
and-hope races.

A plan is a comma-separated spec, via the ``REPRO_FAULTS`` environment
variable or :func:`install`::

    REPRO_FAULTS="raise@0,hang@2,kill@4"      # fault jobs 0, 2 and 4
    REPRO_FAULTS="raise@1x3"                  # job 1 fails 3 attempts

``mode@index[xTimes]``: *index* counts jobs actually dispatched to a
simulation (cache hits consume no index), in dispatch order, process-
wide; *times* (default 1) is how many attempts of that job fault before
it runs clean — ``x`` high enough exhausts the retry budget.  Modes:

* ``raise`` — the attempt raises :class:`FaultInjected`;
* ``hang``  — the attempt stalls for ``REPRO_FAULT_HANG_SECONDS``
  (default 3600) before proceeding, standing in for a hung worker: the
  executor's per-job timeout must fire and the hung worker be killed;
* ``kill``  — the worker process dies via SIGKILL, standing in for an
  OOM-kill or segfault: the executor must detect the broken pool,
  rebuild it, and retry;
* ``drop``  — a severed connection: a TCP worker
  (:mod:`repro.worker`) closes its socket and exits quietly, so the
  submitting side sees EOF mid-task and must reschedule it on another
  worker (in a pool worker, where there is no connection to sever,
  ``drop`` behaves like ``kill``);
* ``slow``  — a stalled worker: like ``hang``, the attempt sleeps for
  ``REPRO_FAULT_HANG_SECONDS`` before proceeding.  On the TCP backend
  the deadline then evicts just that connection instead of rebuilding
  a pool.

Faults are *assigned in the parent* (the dispatch counter lives here,
in parent module state) and shipped to workers as an explicit argument,
so the plan stays deterministic regardless of which worker runs which
job.  When the faulted attempt runs in the parent process itself (the
serial path, or after degradation to serial), every mode but ``raise``
downgrades to ``raise`` — chaos must not take down the main process or
stall the run it is testing.
"""

from __future__ import annotations

import os
import signal
import time
import warnings
from typing import Dict, NamedTuple, Optional

from repro import telemetry

#: Environment variable holding the fault plan spec.
ENV_VAR = "REPRO_FAULTS"

#: Environment variable: how long a ``hang`` fault stalls, in seconds.
ENV_HANG = "REPRO_FAULT_HANG_SECONDS"

MODES = ("raise", "hang", "kill", "drop", "slow")


class FaultInjected(RuntimeError):
    """Raised by an attempt the fault plan marked as failing."""


class FaultSpec(NamedTuple):
    """One planned fault: ``mode`` for the first ``times`` attempts."""

    mode: str
    times: int


class Assignment:
    """A job's share of the plan: hands out one fault mode per attempt."""

    __slots__ = ("mode", "remaining")

    def __init__(self, spec: Optional[FaultSpec]) -> None:
        self.mode = spec.mode if spec else None
        self.remaining = spec.times if spec else 0

    def take(self) -> Optional[str]:
        """Fault mode for the next attempt (``None`` once exhausted)."""
        if self.remaining <= 0:
            return None
        self.remaining -= 1
        return self.mode


def parse(spec: str) -> Dict[int, FaultSpec]:
    """Parse a plan spec; malformed tokens warn and are skipped."""
    plan: Dict[int, FaultSpec] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            mode, _, where = token.partition("@")
            times = 1
            if "x" in where:
                where, _, reps = where.partition("x")
                times = int(reps)
            index = int(where)
            if mode not in MODES or index < 0 or times < 1:
                raise ValueError(token)
        except ValueError:
            warnings.warn(f"{ENV_VAR}: ignoring malformed token {token!r} "
                          f"(want mode@index[xTimes], mode in {MODES})",
                          RuntimeWarning, stacklevel=2)
            continue
        plan[index] = FaultSpec(mode, times)
    return plan


# Parent-side plan state.  ``_installed`` (test API) overrides the
# environment; ``_env_plan`` caches the parsed env spec so a run does
# not re-parse (and re-warn) per job.  ``_sequence`` is the process-wide
# dispatch counter the plan's indices refer to.
_installed: Optional[Dict[int, FaultSpec]] = None
_env_plan: Optional[Dict[int, FaultSpec]] = None
_env_value: Optional[str] = None
_sequence = 0


def install(spec: Optional[str]) -> None:
    """Install a fault plan programmatically (tests), overriding the
    environment; ``None`` removes it.  Resets the dispatch counter."""
    global _installed, _sequence
    _installed = parse(spec) if spec is not None else None
    _sequence = 0


def reset() -> None:
    """Drop any installed plan and restart the dispatch counter."""
    global _installed, _env_plan, _env_value, _sequence
    _installed = None
    _env_plan = None
    _env_value = None
    _sequence = 0


def _plan() -> Dict[int, FaultSpec]:
    global _env_plan, _env_value
    if _installed is not None:
        return _installed
    env = os.environ.get(ENV_VAR, "")
    if env != _env_value:
        _env_value = env
        _env_plan = parse(env) if env.strip() else {}
    return _env_plan or {}


def active() -> bool:
    """True when a non-empty fault plan is in force."""
    return bool(_plan())


def assign_next() -> Assignment:
    """Claim the next dispatch index's fault assignment (parent only)."""
    global _sequence
    plan = _plan()
    index = _sequence
    _sequence = index + 1
    return Assignment(plan.get(index))


def hang_seconds() -> float:
    raw = os.environ.get(ENV_HANG, "").strip()
    try:
        return float(raw) if raw else 3600.0
    except ValueError:
        warnings.warn(f"{ENV_HANG}={raw!r} is not a number; using 3600",
                      RuntimeWarning, stacklevel=2)
        return 3600.0


def apply(mode: Optional[str], job: object, in_worker: bool) -> None:
    """Apply one attempt's fault (no-op for ``mode=None``).

    Called at the top of the simulation entry point, before any work or
    cache write happens, so a faulted attempt leaves no partial state.
    """
    if mode is None:
        return
    telemetry.emit("parallel.fault", mode=mode, in_worker=in_worker,
                   job=repr(job))
    if not in_worker and mode != "raise":
        # Downgrade: chaos may not SIGKILL or stall the main process.
        raise FaultInjected(f"injected {mode} (downgraded to raise "
                            f"in-process) for {job!r}")
    if mode == "raise":
        raise FaultInjected(f"injected raise for {job!r}")
    if mode in ("hang", "slow"):
        time.sleep(hang_seconds())
        return  # then proceed normally, like a real stall
    if mode in ("kill", "drop"):
        # ``drop`` reaching this generic path means a pool worker (a TCP
        # worker severs its socket in repro.worker before getting here):
        # without a connection to cut, dying is the closest stand-in.
        os.kill(os.getpid(), signal.SIGKILL)
    raise ValueError(f"unknown fault mode {mode!r}")
