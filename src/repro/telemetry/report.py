"""Turn a telemetry event stream into a run report.

The read side of ``repro.telemetry``: :func:`load_events` merges the
per-process ``events-*.jsonl`` files a run produced (parent + pool
workers) into one timestamp-ordered stream, :func:`summarize` reduces
it to the aggregate numbers a human or CI gate cares about — per-phase
simulation timings, result/trace cache hit rates, parallel worker
utilization, sweep-server admission/latency accounting, LLBP structure
counters, per-figure wall clock — and
:func:`format_summary` renders that as text.  ``scripts/report.py`` is
the command-line wrapper; the machine-readable form is what CI uploads
as ``telemetry_summary.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

Event = Dict[str, Any]


def load_events(path: Union[str, Path]) -> List[Event]:
    """Load events from a JSONL file or a directory of ``*.jsonl`` files.

    Events from different processes are merged and sorted by timestamp.
    Blank or truncated lines (a run killed mid-write) are skipped rather
    than fatal, mirroring the result cache's corruption tolerance.
    """
    path = Path(path)
    if path.is_dir():
        files: Sequence[Path] = sorted(path.glob("*.jsonl"))
    else:
        files = [path]
    events: List[Event] = []
    for file in files:
        try:
            text = file.read_text()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "event" in record:
                events.append(record)
    events.sort(key=lambda e: e.get("ts", 0.0))
    return events


def _rate(hits: int, total: int) -> Optional[float]:
    if total <= 0:
        return None
    return round(hits / total, 4)


def _sum(events: List[Event], field: str) -> int:
    return sum(int(e.get(field, 0)) for e in events)


def _summarize_simulation(events: List[Event]) -> Dict[str, Any]:
    phases: Dict[str, Dict[str, Any]] = {}
    for e in [e for e in events if e["event"] == "sim.phase"]:
        agg = phases.setdefault(e.get("phase", "?"), {
            "count": 0, "seconds": 0.0, "branches": 0, "mispredictions": 0,
        })
        agg["count"] += 1
        agg["seconds"] += float(e.get("seconds", 0.0))
        agg["branches"] += int(e.get("branches", 0))
        agg["mispredictions"] += int(e.get("mispredictions", 0))
    for agg in phases.values():
        agg["seconds"] = round(agg["seconds"], 4)
        if agg["seconds"] > 0:
            agg["branches_per_sec"] = round(agg["branches"] / agg["seconds"])
    runs = [e for e in events if e["event"] == "sim.run"]
    return {
        "runs": len(runs),
        "seconds": round(sum(float(e.get("seconds", 0.0)) for e in runs), 4),
        "mispredictions": _sum(runs, "mispredictions"),
        "phases": phases,
    }


def _summarize_caches(events: List[Event]) -> Dict[str, Any]:
    result = [e for e in events if e["event"] == "runner.result"]
    memory = sum(1 for e in result if e.get("source") == "memory")
    disk = sum(1 for e in result if e.get("source") == "disk")
    simulated = sum(1 for e in result if e.get("source") == "simulated")
    trace = [e for e in events if e["event"] == "trace.cache"]
    trace_hits = sum(1 for e in trace if e.get("hit"))
    return {
        "result": {
            "memory_hits": memory,
            "disk_hits": disk,
            "misses": simulated,
            "hit_rate": _rate(memory + disk, len(result)),
            "simulation_seconds": round(
                sum(float(e.get("seconds", 0.0)) for e in result
                    if e.get("source") == "simulated"), 4),
        },
        "trace": {
            "hits": trace_hits,
            "misses": len(trace) - trace_hits,
            "hit_rate": _rate(trace_hits, len(trace)),
            "generation_seconds": round(
                sum(float(e.get("seconds", 0.0)) for e in trace
                    if not e.get("hit")), 4),
        },
    }


def _summarize_parallel(events: List[Event]) -> Dict[str, Any]:
    batches = [e for e in events if e["event"] == "parallel.run_jobs"]
    jobs = [e for e in events if e["event"] == "parallel.job"]
    workers: Dict[str, Dict[str, Any]] = {}
    for e in jobs:
        w = workers.setdefault(str(e.get("pid")), {"jobs": 0,
                                                   "busy_seconds": 0.0})
        # A batched shared-trace task emits one event for N jobs and
        # carries the member count; account for every job it served.
        w["jobs"] += int(e.get("batched", 1))
        w["busy_seconds"] += float(e.get("seconds", 0.0))
    for w in workers.values():
        w["busy_seconds"] = round(w["busy_seconds"], 4)
    # Utilization: worker busy time over the pool's capacity during the
    # dispatched batches (workers x batch wall clock).
    capacity = sum(int(e.get("workers", 0)) * float(e.get("seconds", 0.0))
                   for e in batches)
    busy = sum(w["busy_seconds"] for w in workers.values())
    return {
        "batches": len(batches),
        "jobs_requested": _sum(batches, "requested"),
        "jobs_unique": _sum(batches, "unique"),
        "cache_hits": _sum(batches, "cache_hits"),
        "coalesced": _sum(batches, "coalesced"),
        "dispatched": _sum(batches, "dispatched"),
        "batch_seconds": round(
            sum(float(e.get("seconds", 0.0)) for e in batches), 4),
        "workers": workers,
        "worker_utilization": (round(busy / capacity, 4)
                               if capacity > 0 else None),
    }


def _summarize_backend(events: List[Event]) -> Dict[str, Any]:
    """Distributed-backend accounting: workers, dispatches, bytes.

    ``backend.*`` events exist only on remote backends (REPRO_BACKEND=
    tcp); a local run reports ``dispatches: 0`` and the section is
    omitted from the text rendering.  Per-worker utilization here is
    task busy time over the span each worker was connected, which is
    the number that says whether a sweep kept its remote workers fed.
    """
    joins = [e for e in events if e["event"] == "backend.worker_join"]
    leaves = [e for e in events if e["event"] == "backend.worker_leave"]
    dispatches = [e for e in events if e["event"] == "backend.dispatch"]
    fetches = [e for e in events if e["event"] == "backend.trace_fetch"]
    done = [e for e in events if e["event"] == "backend.task_done"]
    workers: Dict[str, Dict[str, Any]] = {}
    for e in joins:
        w = workers.setdefault(str(e.get("worker")), {
            "tasks": 0, "busy_seconds": 0.0, "joined": None, "left": None})
        w["joined"] = float(e.get("ts", 0.0))
    for e in done:
        w = workers.setdefault(str(e.get("worker")), {
            "tasks": 0, "busy_seconds": 0.0, "joined": None, "left": None})
        w["tasks"] += 1
        w["busy_seconds"] += float(e.get("seconds", 0.0))
    for e in leaves:
        w = workers.get(str(e.get("worker")))
        if w is not None:
            w["left"] = float(e.get("ts", 0.0))
    end = max((float(e["ts"]) for e in events if "ts" in e), default=0.0)
    for w in workers.values():
        w["busy_seconds"] = round(w["busy_seconds"], 4)
        span = ((w["left"] or end) - w["joined"]
                if w["joined"] is not None else 0.0)
        w["utilization"] = _rate(w["busy_seconds"], span) if span > 0 else None
        w.pop("joined", None)
        w.pop("left", None)
    return {
        "workers_joined": len(joins),
        "workers_left": len(leaves),
        "dispatches": len(dispatches),
        "tasks_done": len(done),
        "trace_fetches": len(fetches),
        "bytes_dispatched": _sum(dispatches, "bytes"),
        "bytes_traces": _sum(fetches, "bytes"),
        "digest_mismatches": len([e for e in events
                                  if e["event"] == "backend.digest_mismatch"]),
        "degraded_to_local": len([e for e in events
                                  if e["event"] == "backend.degraded"]),
        "workers": workers,
    }


def _summarize_server(events: List[Event]) -> Dict[str, Any]:
    """Sweep-daemon accounting: admission, serving latency, tenants.

    ``server.*`` events exist only when a run went through
    ``repro.server``; a serverless run reports ``requests: 0`` and the
    section is omitted from the text rendering.  Latency percentiles
    are submit-to-result per served job, the same measurement the
    loadgen reports from the client side.
    """
    submits = [e for e in events if e["event"] == "server.submit"]
    rejects = [e for e in events if e["event"] == "server.reject"]
    results = [e for e in events if e["event"] == "server.result"]
    dispatches = [e for e in events if e["event"] == "server.dispatch"]
    by_reason: Dict[str, int] = {}
    for e in rejects:
        reason = str(e.get("reason", "?"))
        by_reason[reason] = by_reason.get(reason, 0) + 1
    by_source: Dict[str, int] = {}
    tenants: Dict[str, int] = {}
    for e in results:
        source = str(e.get("source", "?"))
        by_source[source] = by_source.get(source, 0) + 1
        tenant = str(e.get("tenant", "?"))
        tenants[tenant] = tenants.get(tenant, 0) + 1
    latency: Optional[Dict[str, float]] = None
    latencies = sorted(float(e.get("seconds", 0.0)) for e in results)
    if latencies:
        from repro.common.stats import percentile

        latency = {"p50": round(percentile(latencies, 50.0), 6),
                   "p95": round(percentile(latencies, 95.0), 6),
                   "p99": round(percentile(latencies, 99.0), 6)}
    timestamps = [float(e["ts"]) for e in results if "ts" in e]
    span = (max(timestamps) - min(timestamps)
            if len(timestamps) > 1 else 0.0)
    resumes = [e for e in events if e["event"] == "server.resume"]
    return {
        "requests": len(submits),
        "jobs_submitted": _sum(submits, "jobs"),
        "rejected": by_reason,
        "served": by_source,
        "jobs_served": len(results),
        "served_by_tenant": tenants,
        "latency_seconds": latency,
        "throughput_jobs_per_sec": (round(len(results) / span, 3)
                                    if span > 0 else None),
        "dispatches": len(dispatches),
        "jobs_dispatched": _sum(dispatches, "jobs"),
        "job_errors": len([e for e in events
                           if e["event"] == "server.job_error"]),
        "cache_corrupt": len([e for e in events
                              if e["event"] == "server.cache_corrupt"]),
        "clients_joined": len([e for e in events
                               if e["event"] == "server.client_join"]),
        "drains": len([e for e in events
                       if e["event"] == "server.drain"]),
        "resume": ({"requeued": int(resumes[-1].get("requeued", 0)),
                    "journalled": int(resumes[-1].get("journalled", 0))}
                   if resumes else None),
    }


def _summarize_llbp(events: List[Event]) -> Dict[str, Any]:
    counters = [e for e in events if e["event"] == "llbp.counters"]
    if not counters:
        return {"runs": 0}
    hits = _sum(counters, "pb_hits")
    misses = _sum(counters, "pb_misses")
    issued = _sum(counters, "prefetch_issued")
    delivered = _sum(counters, "prefetch_delivered")
    return {
        "runs": len(counters),
        "pb_hits": hits,
        "pb_misses": misses,
        "pb_hit_rate": _rate(hits, hits + misses),
        "prefetch_issued": issued,
        "prefetch_delivered": delivered,
        "prefetch_squashed": _sum(counters, "prefetch_squashed"),
        "prefetch_timeliness": _rate(delivered, issued),
        "pattern_fills": _sum(counters, "fills"),
        "pattern_writebacks": _sum(counters, "writebacks"),
    }


def _summarize_robustness(events: List[Event]) -> Dict[str, Any]:
    """Fault-tolerance accounting: retries, timeouts, rebuilds, resume.

    A clean run reports all-zero counts; anything non-zero is the
    executor's recovery machinery at work (or the fault-injection hook
    in a chaos run), and :func:`format_summary` surfaces it.
    """
    retries = [e for e in events if e["event"] == "parallel.retry"]
    errors: Dict[str, int] = {}
    for e in retries:
        kind = str(e.get("error", "?"))
        errors[kind] = errors.get(kind, 0) + 1
    resumes = [e for e in events if e["event"] == "experiment.resume"]
    return {
        "retries": len(retries),
        "retry_errors": errors,
        "backoff_seconds": round(
            sum(float(e.get("delay", 0.0)) for e in retries), 4),
        "timeouts": len([e for e in events
                         if e["event"] == "parallel.timeout"]),
        "workers_lost": len([e for e in events
                             if e["event"] == "parallel.worker_lost"]),
        "pool_rebuilds": len([e for e in events
                              if e["event"] == "parallel.pool_rebuild"]),
        "degraded_to_serial": len([e for e in events
                                   if e["event"] == "parallel.degraded"]),
        "exhausted": len([e for e in events
                          if e["event"] == "parallel.exhausted"]),
        "faults_injected": len([e for e in events
                                if e["event"] == "parallel.fault"]),
        "cache_corrupt": len([e for e in events
                              if e["event"] == "parallel.cache_corrupt"]),
        "interrupted": len([e for e in events
                            if e["event"] == "experiment.interrupted"]),
        "resume": ({"journaled": int(resumes[-1].get("journaled", 0)),
                    "total": int(resumes[-1].get("total", 0))}
                   if resumes else None),
    }


def _summarize_figures(events: List[Event]) -> Dict[str, float]:
    return {e["name"]: round(float(e.get("seconds", 0.0)), 4)
            for e in events if e["event"] == "experiment.figure" and "name" in e}


def summarize(events: List[Event]) -> Dict[str, Any]:
    """Reduce an event stream to the aggregate report dictionary."""
    timestamps = [float(e["ts"]) for e in events if "ts" in e]
    return {
        "events": len(events),
        "processes": len({e.get("pid") for e in events}),
        "wall_seconds": (round(max(timestamps) - min(timestamps), 4)
                         if timestamps else 0.0),
        "simulation": _summarize_simulation(events),
        "caches": _summarize_caches(events),
        "parallel": _summarize_parallel(events),
        "backend": _summarize_backend(events),
        "server": _summarize_server(events),
        "robustness": _summarize_robustness(events),
        "llbp": _summarize_llbp(events),
        "figures": _summarize_figures(events),
    }


def _pct(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{100.0 * value:.1f}%"


def format_summary(summary: Dict[str, Any]) -> str:
    """Render :func:`summarize` output as a human-readable report."""
    lines: List[str] = []
    lines.append(f"telemetry: {summary['events']} events from "
                 f"{summary['processes']} process(es), "
                 f"{summary['wall_seconds']:.1f}s wall clock")

    sim = summary["simulation"]
    if sim["runs"]:
        lines.append(f"\nsimulation — {sim['runs']} run(s), "
                     f"{sim['seconds']:.2f}s, "
                     f"{sim['mispredictions']:,} mispredictions")
        for name, agg in sim["phases"].items():
            bps = agg.get("branches_per_sec")
            rate = f", {bps:,} branches/sec" if bps else ""
            lines.append(f"  {name:<8} {agg['seconds']:>8.2f}s  "
                         f"{agg['branches']:>12,} branches{rate}")

    caches = summary["caches"]
    result, trace = caches["result"], caches["trace"]
    if result["memory_hits"] or result["disk_hits"] or result["misses"]:
        lines.append(f"\nresult cache — hit rate {_pct(result['hit_rate'])} "
                     f"(memory {result['memory_hits']}, "
                     f"disk {result['disk_hits']}, "
                     f"simulated {result['misses']} in "
                     f"{result['simulation_seconds']:.2f}s)")
    if trace["hits"] or trace["misses"]:
        lines.append(f"trace cache — hit rate {_pct(trace['hit_rate'])} "
                     f"({trace['hits']} hits, {trace['misses']} generated in "
                     f"{trace['generation_seconds']:.2f}s)")

    par = summary["parallel"]
    if par["batches"]:
        lines.append(f"\nparallel — {par['batches']} batch(es): "
                     f"{par['jobs_requested']} jobs, "
                     f"{par['jobs_unique']} unique, "
                     f"{par['cache_hits']} cached, "
                     f"{par['coalesced']} coalesced, "
                     f"{par['dispatched']} dispatched in "
                     f"{par['batch_seconds']:.2f}s")
        lines.append(f"  worker utilization "
                     f"{_pct(par['worker_utilization'])}")
        for pid, w in sorted(par["workers"].items()):
            lines.append(f"  worker {pid:<8} {w['jobs']:>4} job(s)  "
                         f"{w['busy_seconds']:>8.2f}s busy")

    back = summary.get("backend", {})
    if back.get("dispatches") or back.get("workers_joined"):
        lines.append(f"\nbackend — {back['workers_joined']} worker(s) "
                     f"joined, {back['workers_left']} left; "
                     f"{back['dispatches']} dispatch(es), "
                     f"{back['tasks_done']} completed, "
                     f"{back['trace_fetches']} trace fetch(es) "
                     f"({back['bytes_traces']:,} bytes; "
                     f"{back['bytes_dispatched']:,} bytes of envelopes)")
        for wid, w in sorted(back["workers"].items()):
            util = _pct(w.get("utilization"))
            lines.append(f"  worker {wid:<8} {w['tasks']:>4} task(s)  "
                         f"{w['busy_seconds']:>8.2f}s busy  "
                         f"utilization {util}")
        if back.get("digest_mismatches"):
            lines.append(f"  {back['digest_mismatches']} digest "
                         f"mismatch(es) — worker results rejected")
        if back.get("degraded_to_local"):
            lines.append("  remote workers exhausted — degraded to the "
                         "local backend")

    server = summary.get("server", {})
    if server.get("requests") or server.get("jobs_served"):
        served = ", ".join(f"{count} {source}" for source, count
                           in sorted(server["served"].items()))
        lines.append(f"\nserver — {server['requests']} submit(s) "
                     f"({server['jobs_submitted']} jobs) from "
                     f"{server['clients_joined']} connection(s); "
                     f"{server['jobs_served']} result(s) served"
                     f"{f' ({served})' if served else ''}")
        latency = server.get("latency_seconds")
        if latency:
            rate = server.get("throughput_jobs_per_sec")
            lines.append(f"  latency p50/p95/p99 "
                         f"{latency['p50'] * 1e3:.2f} / "
                         f"{latency['p95'] * 1e3:.2f} / "
                         f"{latency['p99'] * 1e3:.2f} ms"
                         + (f"  ({rate:,.1f} jobs/s)" if rate else ""))
        if server.get("rejected"):
            kinds = ", ".join(f"{reason} x{count}" for reason, count
                              in sorted(server["rejected"].items()))
            lines.append(f"  rejected: {kinds}")
        if server.get("job_errors"):
            lines.append(f"  {server['job_errors']} job error(s)")
        if server.get("cache_corrupt"):
            lines.append(f"  {server['cache_corrupt']} corrupt cache "
                         f"entr{'y' if server['cache_corrupt'] == 1 else 'ies'}"
                         f" dropped and recomputed")
        if server.get("resume"):
            res = server["resume"]
            lines.append(f"  resumed: {res['requeued']} pending job(s) "
                         f"requeued, {res['journalled']} already "
                         f"journalled")

    robust = summary.get("robustness", {})
    eventful = any(robust.get(k) for k in
                   ("retries", "timeouts", "workers_lost", "pool_rebuilds",
                    "degraded_to_serial", "exhausted", "faults_injected",
                    "cache_corrupt", "interrupted")) or robust.get("resume")
    if eventful:
        kinds = ", ".join(f"{kind} x{count}" for kind, count
                          in sorted(robust["retry_errors"].items()))
        lines.append(f"\nrobustness — {robust['retries']} retr"
                     f"{'y' if robust['retries'] == 1 else 'ies'}"
                     f"{f' ({kinds})' if kinds else ''}, "
                     f"{robust['backoff_seconds']:.2f}s backing off; "
                     f"{robust['timeouts']} timeout(s), "
                     f"{robust['workers_lost']} worker(s) lost, "
                     f"{robust['pool_rebuilds']} pool rebuild(s)")
        if robust["faults_injected"]:
            lines.append(f"  {robust['faults_injected']} fault(s) injected "
                         f"(REPRO_FAULTS chaos hook)")
        if robust["cache_corrupt"]:
            lines.append(f"  {robust['cache_corrupt']} corrupt cache "
                         f"entr{'y' if robust['cache_corrupt'] == 1 else 'ies'}"
                         f" detected and re-run")
        if robust["degraded_to_serial"]:
            lines.append("  pool irrecoverable — degraded to serial "
                         "execution")
        if robust["exhausted"]:
            lines.append(f"  {robust['exhausted']} job(s) failed after "
                         f"exhausting retries")
        if robust["interrupted"]:
            lines.append("  run interrupted (Ctrl-C) — resumable via "
                         "--resume")
        if robust["resume"]:
            res = robust["resume"]
            lines.append(f"  resumed: {res['journaled']}/{res['total']} "
                         f"simulations already journalled")

    llbp = summary["llbp"]
    if llbp.get("runs"):
        lines.append(f"\nllbp — pattern-buffer hit rate "
                     f"{_pct(llbp['pb_hit_rate'])} "
                     f"({llbp['pb_hits']:,} hits / {llbp['pb_misses']:,} "
                     f"misses), prefetch timeliness "
                     f"{_pct(llbp['prefetch_timeliness'])} "
                     f"({llbp['prefetch_delivered']:,} delivered / "
                     f"{llbp['prefetch_issued']:,} issued, "
                     f"{llbp['prefetch_squashed']:,} squashed)")

    figures = summary["figures"]
    if figures:
        lines.append("\nfigures:")
        for name, seconds in figures.items():
            lines.append(f"  {name:<8} {seconds:>8.2f}s")

    return "\n".join(lines)


def write_summary(summary: Dict[str, Any], path: Union[str, Path]) -> None:
    """Write the machine-readable summary JSON (for CI artifacts/diffs)."""
    Path(path).write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
