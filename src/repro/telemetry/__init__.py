"""Structured run telemetry: events, timings, cache and worker metrics.

Opt-in observability for the whole run path.  Set ``REPRO_TELEMETRY`` to
a directory (or pass ``--telemetry`` to ``python -m repro.experiments``)
and every process in the run — the CLI, the simulation engine, the
cached runner, the parallel executor's workers — appends structured
JSON-lines events to it; ``scripts/report.py`` merges and summarizes
them.  With the variable unset, every instrumentation point reduces to
one cheap enabled-check per *phase* (never per branch), so the hot loops
are untouched.

Write side: :func:`emit`, :func:`phase`, :func:`configure`,
:func:`disable`, :func:`enabled`.  Read side:
:func:`~repro.telemetry.report.load_events`,
:func:`~repro.telemetry.report.summarize`,
:func:`~repro.telemetry.report.format_summary`.
"""

from repro.telemetry.collector import (
    ENV_VAR,
    Collector,
    add_listener,
    configure,
    disable,
    emit,
    enabled,
    events,
    phase,
    remove_listener,
    reset,
)
from repro.telemetry.report import (
    format_summary,
    load_events,
    summarize,
    write_summary,
)

__all__ = [
    "ENV_VAR",
    "Collector",
    "add_listener",
    "remove_listener",
    "configure",
    "disable",
    "emit",
    "enabled",
    "events",
    "phase",
    "reset",
    "format_summary",
    "load_events",
    "summarize",
    "write_summary",
]
