"""Structured-event collection: the write side of ``repro.telemetry``.

One :class:`Collector` per process appends JSON-object lines to
``events-<pid>.jsonl`` inside the telemetry directory, so concurrent
writers (the parallel executor's workers) never interleave partial
lines; :mod:`repro.telemetry.report` merges the per-process files back
into one event stream ordered by timestamp.

The module-level :func:`emit` / :func:`phase` API is what instrumented
code calls.  It is opt-in via the ``REPRO_TELEMETRY`` environment
variable (a directory path; empty, ``0`` or ``off`` disables) and built
to cost almost nothing when off: instrumentation points are
phase-grained — once per simulation phase, cache lookup or batch, never
per branch — and a disabled :func:`emit` is a dictionary lookup plus an
early return.  The environment is re-read on every call so tests and
the ``--telemetry`` CLI flag can toggle collection at runtime, and the
active collector is keyed by pid so forked worker processes get their
own sink instead of inheriting the parent's file handle.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, TextIO

#: Environment variable holding the telemetry directory (opt-in switch).
ENV_VAR = "REPRO_TELEMETRY"

#: Values of ``REPRO_TELEMETRY`` that mean "disabled".
_OFF_VALUES = frozenset({"", "0", "off", "false", "no"})


class Collector:
    """Per-process event collector with a JSONL file sink.

    Events are also kept in memory (``self.events``) so in-process code
    — tests, summaries at the end of a run — can inspect them without
    re-reading the file.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.pid = os.getpid()
        self.events: List[Dict[str, Any]] = []
        self._fh: Optional[TextIO] = None

    @property
    def path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"events-{self.pid}.jsonl"

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        record: Dict[str, Any] = {"event": event, "ts": time.time(),
                                  "pid": self.pid}
        record.update(fields)
        self.events.append(record)
        if self.directory is not None:
            if self._fh is None:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a")
            json.dump(record, self._fh, separators=(",", ":"))
            self._fh.write("\n")
            # One flush per event keeps the file consumable by other
            # processes (report.py, CI) even mid-run; event rate is
            # phase-grained, so this is not a hot path.
            self._fh.flush()
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# Active collector, keyed by the (env value, pid) it was created under;
# a change in either — monkeypatched tests, --telemetry, forked workers
# — retires it and builds a fresh one on the next emit.
_active: Optional[Collector] = None
_active_env: Optional[str] = None
_active_pid: Optional[int] = None


def _current() -> Optional[Collector]:
    global _active, _active_env, _active_pid
    env = os.environ.get(ENV_VAR, "")
    pid = os.getpid()
    if env != _active_env or pid != _active_pid:
        if _active is not None and _active_pid == pid:
            _active.close()
        _active_env, _active_pid = env, pid
        if env.strip().lower() in _OFF_VALUES:
            _active = None
        else:
            _active = Collector(Path(env))
    return _active


# In-process event subscribers (the sweep server's client feed).  A
# listener receives every record emit() produces, even when no file
# sink is configured — registering one therefore also flips enabled()
# on, so timing-gated instrumentation points start producing events.
_listeners: List[Callable[[Dict[str, Any]], None]] = []


def add_listener(listener: Callable[[Dict[str, Any]], None]) -> None:
    """Stream every emitted event to ``listener`` (in-process only)."""
    _listeners.append(listener)


def remove_listener(listener: Callable[[Dict[str, Any]], None]) -> None:
    try:
        _listeners.remove(listener)
    except ValueError:
        pass


def _fanout(record: Dict[str, Any]) -> None:
    # Iterate a copy: a listener may unsubscribe itself mid-callback.
    # A listener exception must not break the instrumented code path —
    # a dead subscriber is the server's problem, not the simulation's.
    for listener in list(_listeners):
        try:
            listener(record)
        except Exception:
            pass


def enabled() -> bool:
    """True when telemetry collection is active for this process."""
    return _current() is not None or bool(_listeners)


def emit(event: str, **fields: Any) -> None:
    """Record one structured event (no-op when telemetry is off)."""
    collector = _current()
    if collector is not None:
        record = collector.emit(event, **fields)
    elif _listeners:
        record = {"event": event, "ts": time.time(), "pid": os.getpid()}
        record.update(fields)
    else:
        return
    _fanout(record)


@contextmanager
def phase(event: str, **fields: Any) -> Iterator[None]:
    """Time a block and emit ``event`` with a ``seconds`` field."""
    if not enabled():
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        emit(event, seconds=time.perf_counter() - start, **fields)


def configure(directory: os.PathLike) -> None:
    """Enable telemetry for this process *and its children*.

    Setting the environment variable (rather than module state) is what
    lets pool workers inherit the setting.
    """
    os.environ[ENV_VAR] = str(directory)


def disable() -> None:
    """Turn telemetry off (and stop children from inheriting it)."""
    os.environ.pop(ENV_VAR, None)
    reset()


def reset() -> None:
    """Close and drop the active collector (tests; end of a run)."""
    global _active, _active_env, _active_pid
    if _active is not None:
        _active.close()
    _active = None
    _active_env = None
    _active_pid = None


def events() -> List[Dict[str, Any]]:
    """The events this process has collected so far (empty when off)."""
    collector = _current()
    if collector is None:
        return []
    return list(collector.events)
