"""Analytic SRAM latency/energy model (paper Table III, Fig 12).

The paper uses CACTI 7.0 at 22nm; offline we fit a capacity/width scaling
model to the relative numbers Table III reports and use it to derive
per-access latency (in cycles at 4GHz) and energy for every structure,
plus access-frequency-weighted totals for Fig 12.
"""

from repro.energy.sram import SramModel, SramStructure
from repro.energy.model import (
    EnergyModel,
    StructureEnergy,
    TABLE3_STRUCTURES,
    table3_rows,
)

__all__ = [
    "SramModel",
    "SramStructure",
    "EnergyModel",
    "StructureEnergy",
    "TABLE3_STRUCTURES",
    "table3_rows",
]
