"""Anchored scaling model for SRAM access latency and energy.

CACTI is a large C++ tool; what the paper extracts from it is a set of
*relative* access latencies and energies for five structures (Table III).
This model stores those measurements as anchors and scales between them
with the power laws the anchors themselves imply:

* energy  ~ capacity ** 0.73   (64K→512K TSL: 8x capacity → 4.58x energy)
* latency ~ capacity ** 0.45   (64K→512K TSL: 8x capacity → 2.55x latency)

For a queried structure the nearest anchor (log-distance in capacity and
access width) is selected and scaled — so the paper's exact numbers are
reproduced at the anchors, and other design points (e.g. the 16- and
256-entry pattern buffers of Fig 12) interpolate sensibly.
All outputs are relative to one 64K TSL pattern-table access.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

#: Capacity exponents implied by Table III's 64KiB → 512KiB anchors.
LAT_EXP = math.log(2.55) / math.log(8.0)     # ≈ 0.45
ENERGY_EXP = math.log(4.58) / math.log(8.0)  # ≈ 0.73


@dataclass(frozen=True)
class SramStructure:
    """A physical SRAM structure to be costed."""

    name: str
    capacity_bytes: float
    access_bytes: float
    ways: int = 1

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.access_bytes <= 0 or self.ways <= 0:
            raise ValueError("structure geometry must be positive")


@dataclass(frozen=True)
class _Anchor:
    """One Table III measurement: (capacity, width) -> (latency, energy)."""

    capacity_bytes: float
    access_bytes: float
    rel_latency: float
    rel_energy: float


#: Table III, relative to 64K TSL.  Access widths per §VII-D: TAGE reads
#: 42 bytes (21 tables x 16 bits); LLBP and PB move a 36-byte pattern set;
#: the CD reads 8 bits of metadata.
_ANCHORS: Tuple[_Anchor, ...] = (
    _Anchor(64 * 1024, 42, 1.00, 1.00),      # 64KiB TSL
    _Anchor(512 * 1024, 42, 2.55, 4.58),     # 512KiB TSL
    _Anchor(504 * 1024, 36, 2.68, 4.44),     # LLBP storage
    _Anchor(8.75 * 1024, 1, 0.80, 0.30),     # context directory
    _Anchor(2.25 * 1024, 36, 0.62, 0.25),    # 64-entry pattern buffer
)


class SramModel:
    """Relative latency/energy of SRAM structures (1.0 = 64K TSL access)."""

    def __init__(self, frequency_ghz: float = 4.0,
                 reference_latency_cycles: int = 2) -> None:
        self.frequency_ghz = frequency_ghz
        self.reference_latency_cycles = reference_latency_cycles

    @staticmethod
    def _nearest_anchor(structure: SramStructure) -> _Anchor:
        def distance(anchor: _Anchor) -> float:
            cap = abs(math.log(structure.capacity_bytes / anchor.capacity_bytes))
            width = abs(math.log(structure.access_bytes / anchor.access_bytes))
            return cap + 0.5 * width

        return min(_ANCHORS, key=distance)

    def relative_latency(self, structure: SramStructure) -> float:
        anchor = self._nearest_anchor(structure)
        ratio = structure.capacity_bytes / anchor.capacity_bytes
        return anchor.rel_latency * ratio ** LAT_EXP

    #: Cycles per unit of relative latency: calibrated so Table III's
    #: cycle column reproduces (64K TSL -> 2 cycles, 512K TSL and LLBP ->
    #: 4 cycles, CD and PB -> 1 cycle) at a 0.25ns clock.
    CYCLES_PER_REL = 1.57

    def latency_cycles(self, structure: SramStructure) -> int:
        """Access latency in cycles at 4GHz (Table III's cycle column)."""
        cycles = self.relative_latency(structure) * self.CYCLES_PER_REL
        return max(1, round(cycles))

    def relative_energy(self, structure: SramStructure) -> float:
        anchor = self._nearest_anchor(structure)
        ratio = structure.capacity_bytes / anchor.capacity_bytes
        return anchor.rel_energy * ratio ** ENERGY_EXP


def anchors() -> List[_Anchor]:
    """The calibration anchors (exported for tests and documentation)."""
    return list(_ANCHORS)
