"""Structure inventory and access-frequency-weighted energy (Table III, Fig 12).

Structures are costed at the paper's *hardware* sizes (Table III is a
hardware study, independent of the simulation's capacity scaling): a 64K
and 512K TSL, the 504KiB LLBP storage, the 8.75KiB context directory and
pattern buffers of 16/64/256 entries (36 bytes per pattern set).

Fig 12 weights per-access energy by how often each structure is accessed,
with access counts taken from simulation: TAGE-SC-L and the PB are read
for every conditional-branch prediction, the CD on every context change,
and LLBP storage on every pattern-set fill or writeback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.energy.sram import SramModel, SramStructure

#: Bytes of one pattern set transfer (288 bits, §VI).
PATTERN_SET_BYTES = 36


def pb_structure(entries: int) -> SramStructure:
    return SramStructure(
        name=f"PB ({entries} entries)",
        capacity_bytes=entries * PATTERN_SET_BYTES,
        access_bytes=PATTERN_SET_BYTES,
        ways=4,
    )


TABLE3_STRUCTURES: Dict[str, SramStructure] = {
    "64KiB TSL": SramStructure("64KiB TSL", 64 * 1024, 42),
    "512KiB TSL": SramStructure("512KiB TSL", 512 * 1024, 42),
    "LLBP": SramStructure("LLBP", 504 * 1024, PATTERN_SET_BYTES),
    "CD": SramStructure("CD", int(8.75 * 1024), 1, ways=7),
    "PB (64-entries)": pb_structure(64),
}


@dataclass
class StructureEnergy:
    """One Table III row."""

    name: str
    relative_latency: float
    latency_cycles: int
    relative_energy: float


def table3_rows(model: SramModel = SramModel()) -> List[StructureEnergy]:
    """Regenerate Table III."""
    rows = []
    for name, structure in TABLE3_STRUCTURES.items():
        rows.append(StructureEnergy(
            name=name,
            relative_latency=model.relative_latency(structure),
            latency_cycles=model.latency_cycles(structure),
            relative_energy=model.relative_energy(structure),
        ))
    return rows


@dataclass
class EnergyBreakdown:
    """Access-frequency-weighted energy of one design (Fig 12)."""

    design: str
    components: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.components.values())


class EnergyModel:
    """Combines per-access energies with simulated access frequencies."""

    def __init__(self, sram: SramModel = SramModel()) -> None:
        self.sram = sram

    def tsl_design(self, name: str, capacity_kib: int = 64) -> EnergyBreakdown:
        """A plain TSL design: one pattern-table access per prediction.

        Components are energy *per conditional prediction*, relative to
        one 64K TSL access — the unit Fig 12 plots.
        """
        structure = SramStructure(name, capacity_kib * 1024, 42)
        return EnergyBreakdown(
            design=name,
            components={"TAGE-SC-L": self.sram.relative_energy(structure)},
        )

    def llbp_design(self, predictions: int, cd_accesses: int,
                    llbp_accesses: int, pb_entries: int = 64,
                    pb_accesses: int = 0, name: str = "") -> EnergyBreakdown:
        """LLBP beside a 64K TSL (Fig 12's LLBP bars).

        Access counts are converted to frequencies per prediction; the PB
        defaults to one access per prediction (it sits on the prediction
        path beside TAGE).
        """
        if predictions <= 0:
            raise ValueError("predictions must be positive")
        if pb_accesses <= 0:
            pb_accesses = predictions
        tsl = self.sram.relative_energy(TABLE3_STRUCTURES["64KiB TSL"])
        cd = self.sram.relative_energy(TABLE3_STRUCTURES["CD"])
        llbp = self.sram.relative_energy(TABLE3_STRUCTURES["LLBP"])
        pb = self.sram.relative_energy(pb_structure(pb_entries))
        return EnergyBreakdown(
            design=name or f"LLBP ({pb_entries}-entry PB)",
            components={
                "TAGE-SC-L": tsl,
                "CD": cd * cd_accesses / predictions,
                "PB": pb * pb_accesses / predictions,
                "LLBP": llbp * llbp_accesses / predictions,
            },
        )

    @staticmethod
    def normalise(breakdowns: List[EnergyBreakdown],
                  baseline: EnergyBreakdown) -> List[EnergyBreakdown]:
        """Scale all breakdowns so the baseline's total is 1.0 (Fig 12)."""
        scale = baseline.total
        if scale <= 0:
            raise ValueError("baseline has no energy")
        return [
            EnergyBreakdown(
                design=b.design,
                components={k: v / scale for k, v in b.components.items()},
            )
            for b in breakdowns
        ]
