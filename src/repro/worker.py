"""``python -m repro.worker`` — TCP work-queue client.

The pull side of :class:`repro.parallel.backend.tcp.TCPBackend`: dial a
submitter (``python -m repro.worker HOST:PORT``, how the backend's own
loopback subprocesses run) or listen for submitters to dial in
(``python -m repro.worker --listen PORT``, for remote hosts named in
``REPRO_BACKEND_WORKERS=host:port,...``; submitters are served one at a
time and the listener survives their turnover).

Per task the worker applies the envelope's ``REPRO_*`` knob snapshot,
resolves the workload trace through its own content-addressed store —
requesting the packed bytes over the socket only on a store miss, so a
warm worker transfers nothing — runs the batched task through the same
``executor._simulate_task`` entry point a pool worker uses (registry +
selected engine included), and streams back the runner's canonical JSON
results plus their journal sha256 digests.  A task that fails reports
an ``error`` message carrying the original exception's type name;
the ``drop`` fault mode severs the socket and exits without a word,
exactly like a worker host vanishing mid-task.
"""

from __future__ import annotations

import os
import socket
import sys
from typing import Optional

from repro import telemetry
from repro.parallel.backend import apply_env
from repro.parallel.backend.tcp import (KIND_BIN, PROTOCOL_VERSION,
                                        recv_frame, recv_json, send_frame,
                                        send_json)


def _ensure_trace(sock: socket.socket, workload: str,
                  instructions: int) -> int:
    """Make the task's trace resolvable locally; returns bytes fetched.

    With the store enabled, a miss fetches the submitter's packed bytes
    and publishes them atomically under the content address — the next
    task for the same trace is a warm hit, and ``generate_workload``
    checksum-validates the file on load (a corrupt transfer degrades to
    local regeneration, never to wrong data).  With ``REPRO_TRACE_STORE=0``
    the worker simply regenerates deterministically from the seed.
    """
    from repro.traces import store as trace_store
    from repro.workloads import catalog

    if not trace_store.enabled():
        return 0
    spec = catalog.get_spec(workload)
    store = trace_store.TraceStore(catalog._cache_dir() / "traces")
    path = store.path_for(workload, spec.seed, instructions)
    if path.exists():
        return 0
    send_json(sock, {"t": "trace", "workload": workload,
                     "instructions": instructions})
    header = recv_json(sock)
    if header.get("t") != "trace-data":
        raise ConnectionError(f"expected trace-data, got {header.get('t')!r}")
    kind, data = recv_frame(sock)
    if kind != KIND_BIN or len(data) != header.get("size"):
        raise ConnectionError("trace payload does not match its header")
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    temp.write_bytes(data)
    os.replace(temp, path)
    return len(data)


def _run_task(sock: socket.socket, message: dict) -> None:
    from repro.experiments import runner
    from repro.experiments.journal import result_digest
    from repro.parallel import executor

    apply_env(message.get("env") or {})
    task = executor._Task(tuple(
        executor.SimJob(message["workload"], key, message["instructions"])
        for key in message["keys"]))
    fault = message.get("fault")
    if fault == "drop":
        # A severed connection: vanish mid-task without a goodbye, so
        # the submitter sees EOF and must reschedule on another worker.
        telemetry.emit("parallel.fault", mode="drop", in_worker=True,
                       job=repr(task.jobs[0] if len(task.jobs) == 1
                                else task))
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        sock.close()
        os._exit(2)
    try:
        _ensure_trace(sock, message["workload"], message["instructions"])
        results = executor._simulate_task(task, fault, in_worker=True)
        send_json(sock, {
            "t": "result", "id": message.get("id"),
            "results": [runner._to_json(result) for result in results],
            "digests": [result_digest(result) for result in results]})
    except (OSError, KeyboardInterrupt, SystemExit):
        raise
    except BaseException as error:
        send_json(sock, {"t": "error", "id": message.get("id"),
                         "kind": type(error).__name__,
                         "message": str(error)})


def _serve(sock: socket.socket) -> int:
    """Serve one submitter connection until it says close (or EOF)."""
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass
    send_json(sock, {"t": "hello", "pid": os.getpid(),
                     "host": socket.gethostname(),
                     "version": PROTOCOL_VERSION})
    welcome = recv_json(sock)
    if (welcome.get("t") != "welcome"
            or welcome.get("version") != PROTOCOL_VERSION):
        print(f"repro.worker: incompatible submitter: {welcome!r}",
              file=sys.stderr)
        return 1
    while True:
        send_json(sock, {"t": "ready"})
        message = recv_json(sock)
        kind = message.get("t")
        if kind == "close":
            return 0
        if kind == "env":
            apply_env(message.get("env") or {})
            names = message.get("names") or []
            send_json(sock, {"t": "env-data", "id": message.get("id"),
                             "env": {name: os.environ.get(name)
                                     for name in names}})
            continue
        if kind == "task":
            _run_task(sock, message)
            continue
        raise ConnectionError(f"unexpected message {kind!r}")


def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "--listen":
        if len(argv) < 2:
            print("usage: python -m repro.worker --listen PORT [HOST]",
                  file=sys.stderr)
            return 2
        host = argv[2] if len(argv) > 2 else "0.0.0.0"
        server = socket.create_server((host, int(argv[1])))
        print(f"repro.worker: listening on "
              f"{server.getsockname()[0]}:{server.getsockname()[1]}",
              flush=True)
        while True:
            conn, _addr = server.accept()
            try:
                _serve(conn)
            except (ConnectionError, OSError) as error:
                print(f"repro.worker: submitter lost: {error}",
                      file=sys.stderr)
            finally:
                conn.close()
    if len(argv) != 1 or ":" not in argv[0]:
        print("usage: python -m repro.worker HOST:PORT | --listen PORT",
              file=sys.stderr)
        return 2
    host, _, port = argv[0].rpartition(":")
    try:
        sock = socket.create_connection((host, int(port)), timeout=30.0)
    except (OSError, ValueError) as error:
        print(f"repro.worker: cannot reach {argv[0]}: {error}",
              file=sys.stderr)
        return 1
    sock.settimeout(None)
    try:
        return _serve(sock)
    except (ConnectionError, OSError) as error:
        print(f"repro.worker: submitter lost: {error}", file=sys.stderr)
        return 1
    finally:
        sock.close()


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except KeyboardInterrupt:
        raise SystemExit(130)
