"""Synthetic server-workload substrate.

The paper evaluates on gem5-collected traces of server applications plus
Google production traces; neither is available offline, so this package
builds the closest synthetic equivalent (DESIGN.md §1): programs with
multi-tier call graphs (request dispatch → handlers → services → shared
helpers), loops, and a behaviour model per conditional branch.  The
behaviour mix is what gives the traces the paper's structure:

* most branches are biased or short-history-predictable,
* a small set of *complex* branches compute their outcome from the current
  call path and a few bits of recent global history — precisely the
  branches that need many long-history patterns globally but only a few
  patterns per program context (§IV),
* loop trip counts vary with call context,
* a little irreducible noise bounds achievable accuracy.
"""

from repro.workloads.behaviors import (
    Behavior,
    BiasedBehavior,
    LocalPatternBehavior,
    GlobalCorrelatedBehavior,
    ContextCorrelatedBehavior,
    RandomBehavior,
    LoopTripBehavior,
    ExecContext,
)
from repro.workloads.program import (
    ComputeStmt,
    CondStmt,
    IfStmt,
    LoopStmt,
    CallStmt,
    JumpStmt,
    Function,
    Program,
)
from repro.workloads.generator import generate_trace
from repro.workloads.builder import WorkloadSpec, build_program
from repro.workloads.catalog import (
    WORKLOADS,
    workload_names,
    get_spec,
    generate_workload,
)

__all__ = [
    "Behavior",
    "BiasedBehavior",
    "LocalPatternBehavior",
    "GlobalCorrelatedBehavior",
    "ContextCorrelatedBehavior",
    "RandomBehavior",
    "LoopTripBehavior",
    "ExecContext",
    "ComputeStmt",
    "CondStmt",
    "IfStmt",
    "LoopStmt",
    "CallStmt",
    "JumpStmt",
    "Function",
    "Program",
    "generate_trace",
    "WorkloadSpec",
    "build_program",
    "WORKLOADS",
    "workload_names",
    "get_spec",
    "generate_workload",
]
