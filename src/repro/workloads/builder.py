"""Construct random-but-seeded synthetic server programs.

A program has a four-tier call graph shaped like a server application:

    entry (request loop) --indirect dispatch--> handlers --> services --> leaves

Handlers model request types (dispatch probabilities follow a Zipf-like
skew); services and leaves are shared across handlers, so the same static
branch executes under many distinct call paths — the precondition for the
paper's context-locality observation.  A configurable number of branches
in shared functions get :class:`ContextCorrelatedBehavior` ("complex"
branches), and loop trip counts can depend on the call context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.rng import XorShift32
from repro.workloads.behaviors import (
    Behavior,
    BiasedBehavior,
    ContextCorrelatedBehavior,
    GlobalCorrelatedBehavior,
    LocalPatternBehavior,
    LoopTripBehavior,
    RandomBehavior,
)
from repro.workloads.program import (
    CallStmt,
    ComputeStmt,
    CondStmt,
    Function,
    IfStmt,
    JumpStmt,
    LoopStmt,
    Program,
    Stmt,
    assign_branch_ids,
)


@dataclass
class WorkloadSpec:
    """All knobs of a synthetic workload (see module docstring).

    ``behavior_weights`` gives the relative frequency of the easy branch
    behaviours (``biased``, ``local``, ``global``, ``random``); complex
    branches are budgeted separately via ``num_complex`` because their
    count (not frequency) is what the paper's working-set study measures.
    """

    name: str
    seed: int = 1
    num_handlers: int = 12
    num_services: int = 40
    num_leaves: int = 90
    min_stmts: int = 8
    max_stmts: int = 18
    behavior_weights: Dict[str, int] = field(
        default_factory=lambda: {"biased": 64, "local": 2, "global": 31, "random": 3}
    )
    bias_low: float = 0.0005
    bias_high: float = 0.008
    global_depth_max: int = 24
    global_noise: float = 0.005
    random_noise_center: float = 0.12
    num_complex: int = 40
    complex_local_bits: int = 2
    complex_noise: float = 0.02
    loop_probability: float = 0.06
    loop_base_max: int = 10
    loop_spread: int = 3
    call_fanout: int = 3
    indirect_fraction: float = 0.25
    complex_sites_per_hot_leaf: int = 2
    hot_leaf_fraction: float = 0.5
    client_fraction: float = 0.15
    dispatch_skew: float = 1.2
    jump_probability: float = 0.03
    compute_max: int = 8
    description: str = ""

    def __post_init__(self) -> None:
        if self.min_stmts < 2 or self.max_stmts < self.min_stmts:
            raise ValueError("invalid statement-count range")
        if self.num_handlers < 1 or self.num_services < 1 or self.num_leaves < 1:
            raise ValueError("each tier needs at least one function")
        if not self.behavior_weights:
            raise ValueError("behavior_weights must be non-empty")

    @property
    def num_functions(self) -> int:
        return 1 + self.num_handlers + self.num_services + self.num_leaves


class _Builder:
    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.rng = XorShift32(spec.seed * 2654435761 % (1 << 32) or 1)
        # Tier id ranges.
        self.entry_id = 0
        self.handler_ids = list(range(1, 1 + spec.num_handlers))
        base = 1 + spec.num_handlers
        self.service_ids = list(range(base, base + spec.num_services))
        base += spec.num_services
        self.leaf_ids = list(range(base, base + spec.num_leaves))
        # Hot shared helpers: a handful of leaves every service leans on;
        # they host the complex branches (see _hot_leaf_body).
        num_hot = min(
            len(self.leaf_ids) - 1,
            max(1, (spec.num_complex + spec.complex_sites_per_hot_leaf - 1)
                // spec.complex_sites_per_hot_leaf),
        )
        self.hot_leaf_ids = self.leaf_ids[:num_hot]
        self.regular_leaf_ids = self.leaf_ids[num_hot:]
        # Partition hot helpers among service "clients": each hot leaf is
        # used by a subset of services, which bounds the call-path
        # diversity any one complex branch sees (and therefore the number
        # of patterns it needs per execution observed).
        self.clients_of: Dict[int, List[int]] = {sid: [] for sid in self.service_ids}
        for hid in self.hot_leaf_ids:
            adopters = [
                sid for sid in self.service_ids
                if self._prob(spec.client_fraction)
            ]
            if not adopters:
                adopters = [self.service_ids[self.rng.below(len(self.service_ids))]]
            for sid in adopters:
                self.clients_of[sid].append(hid)

    # -- sampling helpers ----------------------------------------------------

    def _prob(self, p: float) -> bool:
        return self.rng.below(10_000) < int(p * 10_000)

    def _range(self, lo: int, hi: int) -> int:
        return lo + self.rng.below(hi - lo + 1)

    def _easy_behavior(self) -> Behavior:
        spec = self.spec
        total = sum(spec.behavior_weights.values())
        pick = self.rng.below(total)
        for kind, weight in spec.behavior_weights.items():
            pick -= weight
            if pick < 0:
                break
        if kind == "biased":
            p = spec.bias_low + (spec.bias_high - spec.bias_low) * (
                self.rng.below(1000) / 1000.0
            )
            if self.rng.chance(1, 2):
                p = 1.0 - p
            return BiasedBehavior(p)
        if kind == "local":
            length = self._range(3, 8)
            pattern = "".join(
                "T" if self.rng.chance(1, 2) else "N" for _ in range(length)
            )
            return LocalPatternBehavior(pattern)
        if kind == "global":
            # Mostly near-range correlations; a tail of long-range ones.
            if self.rng.chance(7, 10):
                depth = self._range(2, 10)
            else:
                depth = self._range(11, self.spec.global_depth_max)
            return GlobalCorrelatedBehavior(depth, noise=spec.global_noise,
                                            invert=self.rng.chance(1, 2))
        if kind == "random":
            center = spec.random_noise_center
            p = min(1.0, max(0.0, center + (self.rng.below(200) - 100) / 1000.0))
            if self.rng.chance(1, 2):
                p = 1.0 - p
            return RandomBehavior(p)
        raise ValueError(f"unknown behavior kind {kind!r}")

    # -- body construction ---------------------------------------------------

    def _call_stmt(self, callee_pool: List[int],
                   hot_pool: Optional[List[int]] = None) -> CallStmt:
        spec = self.spec
        if hot_pool and self._prob(spec.hot_leaf_fraction):
            # Shared-helper call: every service leans on the hot leaves.
            return CallStmt([hot_pool[self.rng.below(len(hot_pool))]])
        if len(callee_pool) > 1 and self._prob(spec.indirect_fraction):
            fanout = min(len(callee_pool), self._range(2, max(2, spec.call_fanout)))
            picks: List[int] = []
            while len(picks) < fanout:
                c = callee_pool[self.rng.below(len(callee_pool))]
                if c not in picks:
                    picks.append(c)
            weights = [1 + self.rng.below(8) for _ in picks]
            return CallStmt(picks, weights)
        return CallStmt([callee_pool[self.rng.below(len(callee_pool))]])

    def _body(self, callee_pool: List[int], call_budget: int,
              nested: bool = False,
              hot_pool: Optional[List[int]] = None) -> List[Stmt]:
        spec = self.spec
        n = self._range(spec.min_stmts, spec.max_stmts)
        if nested:
            n = max(2, n // 4)
        body: List[Stmt] = []
        calls_made = 0
        loop_slot = int(spec.loop_probability * 100)
        jump_slot = int(spec.jump_probability * 100)
        for _ in range(n):
            roll = self.rng.below(100)
            if roll < 20:
                body.append(ComputeStmt(self._range(2, spec.compute_max)))
            elif roll < 44:
                body.append(CondStmt(self._easy_behavior()))
            elif roll < 58:
                inner: List[Stmt] = [ComputeStmt(self._range(1, spec.compute_max))]
                if callee_pool and calls_made < call_budget and self.rng.chance(2, 5):
                    inner.append(self._call_stmt(callee_pool, hot_pool))
                    calls_made += 1
                if self.rng.chance(1, 3):
                    inner.append(CondStmt(self._easy_behavior()))
                body.append(IfStmt(self._easy_behavior(), inner))
            elif roll < 58 + loop_slot and not nested:
                context_dep = self.rng.chance(9, 10)
                trip = LoopTripBehavior(
                    base=self._range(3, spec.loop_base_max),
                    spread=spec.loop_spread if context_dep else 0,
                    context_dependent=context_dep,
                )
                inner = self._body(callee_pool, call_budget=1, nested=True,
                                   hot_pool=hot_pool)
                body.append(LoopStmt(trip, inner))
            elif roll < 58 + loop_slot + jump_slot:
                body.append(JumpStmt())
            elif callee_pool and calls_made < call_budget:
                body.append(self._call_stmt(callee_pool, hot_pool))
                calls_made += 1
            else:
                body.append(ComputeStmt(self._range(1, spec.compute_max)))
        if callee_pool and calls_made == 0:
            body.append(self._call_stmt(callee_pool, hot_pool))
        return body

    def _hot_leaf_body(self, num_sites: int) -> List[Stmt]:
        """Body of a hot shared helper: hosts the complex branches.

        Kept structurally simple (no loops/calls/jumps) so the branch
        working set of a hot leaf is exactly its complex sites plus a bit
        of biased glue — maximising executions per complex pattern, the
        way real hot utility functions (hash probes, comparators, lock
        acquires) concentrate dynamic branch counts.
        """
        spec = self.spec
        body: List[Stmt] = [ComputeStmt(self._range(2, spec.compute_max))]
        for _ in range(num_sites):
            local_bits = max(1, spec.complex_local_bits - self.rng.below(2))
            path_depth = 3 if self.rng.chance(3, 5) else 2
            body.append(CondStmt(ContextCorrelatedBehavior(
                local_bits=local_bits, noise=spec.complex_noise,
                path_depth=path_depth)))
            if self.rng.chance(1, 2):
                body.append(ComputeStmt(self._range(1, spec.compute_max)))
        body.append(CondStmt(self._easy_behavior()))
        return body

    # -- program assembly -----------------------------------------------------

    def build(self) -> Program:
        spec = self.spec
        functions: List[Function] = []

        # Entry: the request loop body — dispatch to handlers.
        weights = [
            max(1, int(1000.0 / (i + 1) ** spec.dispatch_skew))
            for i in range(len(self.handler_ids))
        ]
        entry_body: List[Stmt] = [
            ComputeStmt(self._range(2, spec.compute_max)),
            CallStmt(self.handler_ids, weights),
            ComputeStmt(self._range(1, spec.compute_max)),
        ]
        functions.append(Function(self.entry_id, entry_body))

        # Distribute the complex-site budget over the hot leaves.
        sites_left = spec.num_complex
        sites_per_leaf = {}
        for fid in self.hot_leaf_ids:
            take = min(sites_left, spec.complex_sites_per_hot_leaf)
            sites_per_leaf[fid] = max(1, take)
            sites_left -= take

        for fid in self.handler_ids:
            functions.append(
                Function(fid, self._body(self.service_ids, call_budget=6))
            )
        for fid in self.service_ids:
            functions.append(
                Function(fid, self._body(self.regular_leaf_ids, call_budget=4,
                                         hot_pool=self.clients_of[fid] or None))
            )
        for fid in self.leaf_ids:
            if fid in sites_per_leaf:
                functions.append(Function(fid, self._hot_leaf_body(sites_per_leaf[fid])))
            else:
                functions.append(Function(fid, self._body([], call_budget=0)))

        program = Program(functions, entry_function=self.entry_id)
        assign_branch_ids(program)
        return program


def build_program(spec: WorkloadSpec) -> Program:
    """Build the deterministic program described by ``spec``."""
    return _Builder(spec).build()
