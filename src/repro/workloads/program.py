"""Synthetic program model: statements, functions, address layout.

A program is a set of functions; a function body is a list of statements.
Statement types map to the control-flow primitives the paper's workloads
exhibit: straight-line compute, conditional branches (bare or guarding a
skippable body), loops with a back-edge branch, direct/indirect calls, and
region-transition jumps.  Returns are implicit at function end.

Addresses are assigned once after construction so branch PCs, targets and
instruction gaps are consistent — the L1-I model (Fig 11) walks this
layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.workloads.behaviors import Behavior, LoopTripBehavior

INSTR_BYTES = 4  # fixed-width ISA assumption for address layout


@dataclass
class ComputeStmt:
    """``instrs`` straight-line instructions (no branch emitted)."""

    instrs: int

    def __post_init__(self) -> None:
        if self.instrs < 1:
            raise ValueError("compute statement needs >= 1 instruction")


@dataclass
class CondStmt:
    """A conditional branch that does not alter local control flow.

    Models compare-and-branch idioms whose two paths re-join immediately
    (e.g. a branch over a single instruction); only the direction matters.
    """

    behavior: Behavior
    branch_id: int = -1
    pc: int = -1
    target: int = -1


@dataclass
class IfStmt:
    """A conditional branch guarding a skippable body.

    The branch is 'branch-if-taken-skips-body': when *taken*, control jumps
    past ``body``; when not taken, the body executes.  Bodies may contain
    calls, so outcomes shape the call-context stream — and, for the Fig 13
    study, which conditional-branch PCs execute next.
    """

    behavior: Behavior
    body: List["Stmt"]
    branch_id: int = -1
    pc: int = -1
    target: int = -1


@dataclass
class LoopStmt:
    """A bottom-tested loop: body, then a back-edge conditional branch.

    The back-edge is taken while the loop continues and falls through on
    exit.  Trip counts come from a :class:`LoopTripBehavior`.
    """

    trip: LoopTripBehavior
    body: List["Stmt"]
    branch_id: int = -1
    pc: int = -1
    target: int = -1  # loop entry (back-edge target)


@dataclass
class CallStmt:
    """A call to one of ``callees``.

    With one callee this is a direct call; with several it models an
    indirect call through a dispatch table, the callee picked by seeded
    weighted choice at execution time.
    """

    callees: Sequence[int]  # function ids
    weights: Optional[Sequence[int]] = None
    pc: int = -1

    def __post_init__(self) -> None:
        if not self.callees:
            raise ValueError("call statement needs at least one callee")
        if self.weights is not None and len(self.weights) != len(self.callees):
            raise ValueError("weights must match callees")

    @property
    def is_indirect(self) -> bool:
        return len(self.callees) > 1


@dataclass
class JumpStmt:
    """A direct unconditional jump to the next region of the function."""

    pc: int = -1
    target: int = -1


Stmt = Union[ComputeStmt, CondStmt, IfStmt, LoopStmt, CallStmt, JumpStmt]


@dataclass
class Function:
    """A function: id, entry address (assigned later) and body."""

    function_id: int
    body: List[Stmt] = field(default_factory=list)
    entry: int = -1
    return_pc: int = -1  # pc of the implicit return at the end


@dataclass
class Program:
    """A whole synthetic program."""

    functions: List[Function]
    entry_function: int
    base_address: int = 0x400000

    def __post_init__(self) -> None:
        ids = [f.function_id for f in self.functions]
        if sorted(ids) != list(range(len(ids))):
            raise ValueError("function ids must be 0..n-1")
        if not 0 <= self.entry_function < len(self.functions):
            raise ValueError("entry function out of range")
        self._assign_addresses()

    def function(self, function_id: int) -> Function:
        return self.functions[function_id]

    @property
    def num_static_branches(self) -> int:
        """Static conditional branch sites in the program."""
        count = 0
        for fn in self.functions:
            count += _count_cond(fn.body)
        return count

    def _assign_addresses(self) -> None:
        cursor = self.base_address
        for fn in self.functions:
            fn.entry = cursor
            cursor = _layout(fn.body, cursor)
            fn.return_pc = cursor
            cursor += INSTR_BYTES
            # Pad between functions so layouts don't abut (realistic
            # alignment; also keeps I-cache lines per function distinct).
            cursor = (cursor + 63) & ~63


def _count_cond(body: Sequence[Stmt]) -> int:
    count = 0
    for stmt in body:
        if isinstance(stmt, (CondStmt, LoopStmt)):
            count += 1
            if isinstance(stmt, LoopStmt):
                count += _count_cond(stmt.body)
        elif isinstance(stmt, IfStmt):
            count += 1 + _count_cond(stmt.body)
    return count


def _layout(body: List[Stmt], cursor: int) -> int:
    """Assign PCs/targets to ``body`` starting at ``cursor``; return end."""
    for stmt in body:
        if isinstance(stmt, ComputeStmt):
            cursor += stmt.instrs * INSTR_BYTES
        elif isinstance(stmt, CondStmt):
            stmt.pc = cursor
            cursor += INSTR_BYTES
            # Taken path skips one instruction and re-joins.
            stmt.target = cursor + INSTR_BYTES
            cursor = stmt.target
        elif isinstance(stmt, IfStmt):
            stmt.pc = cursor
            cursor += INSTR_BYTES
            cursor = _layout(stmt.body, cursor)
            stmt.target = cursor  # taken -> skip body
        elif isinstance(stmt, LoopStmt):
            loop_entry = cursor
            cursor = _layout(stmt.body, cursor)
            stmt.pc = cursor  # back-edge branch at loop bottom
            stmt.target = loop_entry
            cursor += INSTR_BYTES
        elif isinstance(stmt, CallStmt):
            stmt.pc = cursor
            cursor += INSTR_BYTES
        elif isinstance(stmt, JumpStmt):
            stmt.pc = cursor
            # Jump over a small padding region to the next statement.
            stmt.target = cursor + 4 * INSTR_BYTES
            cursor = stmt.target
        else:  # pragma: no cover - exhaustive over Stmt
            raise TypeError(f"unknown statement {stmt!r}")
    return cursor


def assign_branch_ids(program: Program) -> int:
    """Give every conditional-branch statement a unique id; return count."""
    next_id = 0

    def walk(body: Sequence[Stmt]) -> None:
        nonlocal next_id
        for stmt in body:
            if isinstance(stmt, (CondStmt, IfStmt, LoopStmt)):
                stmt.branch_id = next_id
                next_id += 1
            if isinstance(stmt, (IfStmt, LoopStmt)):
                walk(stmt.body)

    for fn in program.functions:
        walk(fn.body)
    return next_id
