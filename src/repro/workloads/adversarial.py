"""Adversarial stress workloads: the ``adv:`` catalog family.

Where the catalog's synthetic server programs echo *real* workloads,
these generators are targeted microbenchmarks in the style of the
Firestorm/Oryon predictor-dissection work: each one is built to defeat
one structural assumption of one predictor family, so the
characterization pipeline (:mod:`repro.analysis.characterize`) has
scenarios where the family ranking inverts.

Three stressor kinds, each a deterministic trace generator:

``adv:hist[,l=L]``
    Defeats history length ``L``.  A single branch cycles a de Bruijn
    sequence of order ``L + 1`` (period ``2^(L+1)``): every ``L``-bit
    history window occurs with *both* continuations, so any predictor
    keyed on ≤ ``L`` outcome bits — gshare's 14-bit register at the
    default ``l=14`` — cannot beat a coin flip, while longer histories
    disambiguate.

``adv:alias[,bits=B,n=N]``
    Aliases a ``B``-bit PC-indexed table.  ``N`` branches with fixed
    opposite biases sit exactly ``2^(B+2)`` apart in the address space,
    so ``(pc >> 2) & (2^B - 1)`` is identical for all of them: Bi-Mode's
    choice table (and any bimodal-style table of ≤ ``B`` index bits)
    collapses to a single thrashing counter, while a wider geometry
    (``bimode:c=16,d=16``) keeps the branches apart.  Visit order is
    pseudo-random so global history cannot stand in for the PC.

``adv:xor[,k=K]``
    Saturates perceptron threshold training.  A driver branch takes
    pseudo-random outcomes; a victim branch computes the parity of the
    last ``K`` driver outcomes.  At the default ``K=5`` the parity
    inputs span two history *segments* of the default hashed perceptron
    (positions 0..8 against 8-bit segments), and parity across segments
    is not representable by any sum of per-segment weights — the victim
    stays a coin flip for the perceptron (every miss re-trains all
    tables, pinning the weights against the threshold), while gshare's
    per-window counters memorise the parity table outright.  The random
    driver itself is a noise floor every family shares.

Names follow the registry key conventions: tokens comma-separated,
defaults omitted from the canonical spelling
(:func:`canonical_adv_name`).  Specs are resolved through
:func:`repro.workloads.catalog.get_spec` and traces cached through the
same trace store as catalog workloads; ``adv:`` names are *not* listed
in ``workload_names()`` — the catalog proper stays the paper's 14.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Dict, List, Tuple

from repro.common.rng import XorShift32
from repro.traces.trace import Trace, TraceBuilder
from repro.traces.types import BranchType

ADV_PREFIX = "adv:"

_KINDS = ("hist", "alias", "xor")


@dataclasses.dataclass(frozen=True)
class AdversarialSpec:
    """A parsed ``adv:`` name; field relevance depends on ``kind``."""

    kind: str
    history_length: int = 14   # hist: the defeated history length L
    table_bits: int = 13       # alias: index bits of the aliased table
    branches: int = 64         # alias: colliding branch count
    parity: int = 5            # xor: driver outcomes XORed into the victim

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown adversarial kind {self.kind!r}; "
                             f"known: {', '.join(_KINDS)}")
        if not 1 <= self.history_length <= 20:
            raise ValueError("history length (l=) must be in [1, 20]")
        if not 4 <= self.table_bits <= 20:
            raise ValueError("table bits (bits=) must be in [4, 20]")
        if not 2 <= self.branches <= 4096:
            raise ValueError("branch count (n=) must be in [2, 4096]")
        if not 1 <= self.parity <= 16:
            raise ValueError("parity span (k=) must be in [1, 16]")

    @property
    def name(self) -> str:
        return canonical_adv_name(self)

    @property
    def seed(self) -> int:
        """Stable per-spec seed (the trace store keys on it)."""
        return zlib.crc32(self.name.encode()) & 0x7FFFFFFF

    @property
    def description(self) -> str:
        if self.kind == "hist":
            return (f"de Bruijn order {self.history_length + 1}: defeats "
                    f"histories up to {self.history_length} bits")
        if self.kind == "alias":
            return (f"{self.branches} opposite-bias branches colliding in "
                    f"{self.table_bits}-bit PC-indexed tables")
        return (f"victim = parity of last {self.parity} driver outcomes: "
                "cross-segment XOR defeats additive weight tables")


#: kind -> ((token, field, parser), ...) — the ``adv:`` suffix grammar.
_ADV_PARAMS: Dict[str, Tuple[Tuple[str, str, type], ...]] = {
    "hist": (("l", "history_length", int),),
    "alias": (("bits", "table_bits", int), ("n", "branches", int)),
    "xor": (("k", "parity", int),),
}


def is_adversarial(name: str) -> bool:
    return name.startswith(ADV_PREFIX)


def parse_adv_name(name: str) -> AdversarialSpec:
    """``adv:kind[,tok=val...]`` → :class:`AdversarialSpec`.

    Raises ``KeyError`` for an unknown kind (same contract as
    ``catalog.get_spec``) and ``ValueError`` for malformed tokens or
    out-of-range values.
    """
    if not is_adversarial(name):
        raise KeyError(f"not an adversarial workload name: {name!r}")
    body = name[len(ADV_PREFIX):]
    tokens = [token.strip() for token in body.split(",")]
    kind = tokens[0]
    if kind not in _ADV_PARAMS:
        raise KeyError(
            f"unknown adversarial workload kind {kind!r}; "
            f"known: {', '.join(_KINDS)}")
    param_map = {token: (field, parse)
                 for token, field, parse in _ADV_PARAMS[kind]}
    changes: Dict[str, int] = {}
    for token in tokens[1:]:
        if not token:
            continue
        if "=" not in token:
            raise ValueError(f"unknown adv token {token!r}")
        key, value = token.split("=", 1)
        try:
            field, parse = param_map[key]
        except KeyError:
            raise ValueError(
                f"unknown adv:{kind} parameter {key!r}") from None
        changes[field] = parse(value)
    return AdversarialSpec(kind=kind, **changes)


def canonical_adv_name(spec: AdversarialSpec) -> str:
    """Canonical spelling: kind first, tokens in grammar order, defaults
    omitted — one name (and one trace-store entry) per distinct trace."""
    default = AdversarialSpec(kind=spec.kind)
    tokens = [spec.kind]
    for token, field, _ in _ADV_PARAMS[spec.kind]:
        current = getattr(spec, field)
        if current != getattr(default, field):
            tokens.append(f"{token}={current}")
    return ADV_PREFIX + ",".join(tokens)


def adversarial_names() -> List[str]:
    """The default stress suite: one canonical name per stressor kind."""
    return ["adv:hist", "adv:alias", "adv:xor"]


# ---------------------------------------------------------------------------
# Generators.  All deterministic in (spec, instructions); targets follow
# the generator convention of fixed fall-through-relative addresses.

def _de_bruijn_bits(order: int) -> List[int]:
    """A binary de Bruijn sequence of the given order (length 2^order).

    Martin's prefer-one greedy walk: starting from the all-zeros window,
    append 1 whenever the resulting window is unvisited, else 0.  Cycled
    periodically, every ``order``-bit window occurs exactly once per
    period — so every ``(order-1)``-bit window occurs twice, once per
    continuation, which is the ambiguity the hist stressor relies on.
    """
    length = 1 << order
    mask = length - 1
    seen = bytearray(length)
    seen[0] = 1
    state = 0
    bits: List[int] = []
    for _ in range(length):
        candidate = ((state << 1) | 1) & mask
        if not seen[candidate]:
            bit = 1
        else:
            bit = 0
            candidate = (state << 1) & mask
        seen[candidate] = 1
        bits.append(bit)
        state = candidate
    return bits


def _generate_hist(spec: AdversarialSpec, instructions: int,
                   builder: TraceBuilder) -> None:
    pattern = _de_bruijn_bits(spec.history_length + 1)
    period = len(pattern)
    branch_pc = 0x40000
    jump_pc = 0x40040
    i = 0
    while builder.num_instructions < instructions:
        taken = bool(pattern[i % period])
        builder.append(branch_pc, BranchType.COND, taken, branch_pc + 0x40, 3)
        builder.append(jump_pc, BranchType.JUMP, True, branch_pc, 3)
        i += 1


def _generate_alias(spec: AdversarialSpec, instructions: int,
                    builder: TraceBuilder) -> None:
    rng = XorShift32(spec.seed)
    base = 0x200000
    stride = 1 << (spec.table_bits + 2)
    dispatch_pc = 0x1FF000
    while builder.num_instructions < instructions:
        j = rng.below(spec.branches)
        pc = base + j * stride
        # Indirect dispatch models the handler jump table and keeps the
        # visit order out of the conditional history register.
        builder.append(dispatch_pc, BranchType.IND_JUMP, True, pc, 2)
        builder.append(pc, BranchType.COND, j % 2 == 0, pc + 0x40, 2)


def _generate_xor(spec: AdversarialSpec, instructions: int,
                  builder: TraceBuilder) -> None:
    # The driver must be high-entropy: any periodic pattern lets the
    # perceptron identify the cycle phase from a single segment window
    # and sidestep the parity.  The price is a shared noise floor (the
    # driver itself is a coin flip for everyone); the victim carries the
    # discriminating signal — its parity window spans two history
    # segments, so per-window counters (gshare, TAGE) memorise it while
    # any sum of per-segment weights cannot express it.
    rng = XorShift32(spec.seed)
    driver_pc = 0x300000
    victim_pc = 0x300100
    jump_pc = 0x300140
    window: List[int] = [0] * spec.parity
    while builder.num_instructions < instructions:
        driver = rng.below(2)
        window.append(driver)
        del window[0]
        victim = 0
        for bit in window:
            victim ^= bit
        builder.append(driver_pc, BranchType.COND, bool(driver),
                       driver_pc + 0x40, 2)
        builder.append(victim_pc, BranchType.COND, bool(victim),
                       victim_pc + 0x40, 2)
        builder.append(jump_pc, BranchType.JUMP, True, driver_pc, 2)


_GENERATORS = {
    "hist": _generate_hist,
    "alias": _generate_alias,
    "xor": _generate_xor,
}


def generate_adversarial(spec: AdversarialSpec, instructions: int) -> Trace:
    """Generate the stress trace for ``spec`` (deterministic, uncached —
    :func:`repro.workloads.catalog.generate_workload` adds caching)."""
    builder = TraceBuilder(name=spec.name)
    _GENERATORS[spec.kind](spec, instructions, builder)
    return builder.build()
