"""Per-branch outcome models.

Each static conditional branch in a synthetic program owns a ``Behavior``
that decides its direction from the execution context.  The behaviours are
deterministic functions of program state (plus seeded noise), so a
predictor with enough capacity *can* learn them — which is exactly the
property the paper's limit study (Inf TAGE) depends on.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import XorShift32

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """SplitMix64 finaliser: a high-quality deterministic bit mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class ExecContext:
    """Mutable program state visible to branch behaviours.

    Attributes:
        rng: the workload's deterministic noise source.
        path_hash: rolling hash of the current call stack (function ids),
            i.e. the ground-truth "program context" of §IV.
        global_hist: the last 64 conditional-branch outcomes, newest in
            bit 0.
    """

    __slots__ = ("rng", "path_hash", "global_hist", "_path_stack", "_fid_stack")

    def __init__(self, rng: XorShift32) -> None:
        self.rng = rng
        self.path_hash = 0
        self.global_hist = 0
        self._path_stack: List[int] = [0]
        self._fid_stack: List[int] = [0]

    def push_call(self, function_id: int) -> None:
        self.path_hash = splitmix64(self.path_hash ^ (function_id + 1))
        self._path_stack.append(self.path_hash)
        self._fid_stack.append(function_id)

    def pop_call(self) -> None:
        if len(self._path_stack) <= 1:
            raise RuntimeError("call stack underflow")
        self._path_stack.pop()
        self.path_hash = self._path_stack[-1]
        self._fid_stack.pop()

    @property
    def call_depth(self) -> int:
        return len(self._path_stack) - 1

    def partial_path(self, depth: int) -> int:
        """Hash of the ``depth`` innermost stack frames.

        Complex branches correlate with their *near* callers (the
        function and its immediate caller), not the whole stack — which
        is also what makes an RCR window of a few unconditional branches
        a sufficient context fingerprint (§IV).
        """
        value = 0
        for fid in self._fid_stack[-depth:]:
            value = splitmix64(value ^ (fid + 1))
        return value

    def record_outcome(self, taken: bool) -> None:
        self.global_hist = ((self.global_hist << 1) | (1 if taken else 0)) & _MASK64


class Behavior:
    """Base class: decides a conditional branch's direction."""

    def evaluate(self, branch_id: int, ctx: ExecContext) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any per-branch state (between trace generations)."""


class BiasedBehavior(Behavior):
    """Taken with a fixed probability — the easy bulk of real code."""

    def __init__(self, taken_probability: float) -> None:
        if not 0.0 <= taken_probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        # Work in 1/4096 resolution so the rng path stays integer-only.
        self._threshold = int(round(taken_probability * 4096))

    def evaluate(self, branch_id: int, ctx: ExecContext) -> bool:
        return ctx.rng.below(4096) < self._threshold


class LocalPatternBehavior(Behavior):
    """Cycles through a fixed taken/not-taken pattern.

    Predictable from short history once the pattern has been observed;
    exercises TAGE's short-history tables.
    """

    def __init__(self, pattern: str) -> None:
        if not pattern or set(pattern) - {"T", "N"}:
            raise ValueError("pattern must be a non-empty string of T/N")
        self._pattern = [c == "T" for c in pattern]
        self._pos = 0

    def evaluate(self, branch_id: int, ctx: ExecContext) -> bool:
        taken = self._pattern[self._pos]
        self._pos = (self._pos + 1) % len(self._pattern)
        return taken

    def reset(self) -> None:
        self._pos = 0


class GlobalCorrelatedBehavior(Behavior):
    """Outcome copies the direction of the ``depth``-th most recent branch.

    This models the correlated branch *pairs* real code exhibits (the same
    condition tested twice, a flag set then checked): the information is
    literally a single bit already present in global history, so any
    global-history predictor whose history window reaches ``depth``
    outcomes can learn it with as many patterns as *distinct histories
    actually occur* — few, because most surrounding branches are strongly
    biased.  A per-branch polarity decorrelates different followers of the
    same leader.  ``noise`` flips the outcome with the given probability.
    """

    def __init__(self, depth: int, noise: float = 0.0, invert: bool = False) -> None:
        if not 1 <= depth <= 48:
            raise ValueError("depth must be in [1, 48]")
        self.depth = depth
        self.invert = invert
        self._noise = int(round(noise * 4096))

    def evaluate(self, branch_id: int, ctx: ExecContext) -> bool:
        taken = bool((ctx.global_hist >> (self.depth - 1)) & 1)
        if self.invert:
            taken = not taken
        if self._noise and ctx.rng.below(4096) < self._noise:
            taken = not taken
        return taken


class ContextCorrelatedBehavior(Behavior):
    """The paper's *complex branch*: outcome = f(call path, recent outcomes).

    The direction is a deterministic hash of the current call path and the
    last ``local_bits`` global outcomes.  Globally the branch needs one
    pattern per (call path × 2**local_bits) combination — hundreds for
    branches in shared helpers, which is what makes 64K TAGE thrash and
    Inf TAGE shine (§II-D) — but within one program context it needs at
    most 2**local_bits patterns, which is the context-locality property
    LLBP's storage organisation exploits (§IV).

    Both inputs are recoverable from global branch history (the call path
    through the unconditional-branch address bits the history embeds, the
    recent outcomes directly), so a history-based predictor with enough
    capacity *can* learn these branches.
    """

    def __init__(self, local_bits: int = 3, noise: float = 0.0,
                 path_depth: int = 2) -> None:
        if not 1 <= local_bits <= 6:
            raise ValueError("local_bits must be in [1, 6]")
        if not 1 <= path_depth <= 8:
            raise ValueError("path_depth must be in [1, 8]")
        self.local_bits = local_bits
        self.path_depth = path_depth
        self._mask = (1 << local_bits) - 1
        self._noise = int(round(noise * 4096))

    def evaluate(self, branch_id: int, ctx: ExecContext) -> bool:
        key = splitmix64(branch_id * 0x9E3779B9 ^ ctx.partial_path(self.path_depth))
        taken = bool(splitmix64(key ^ (ctx.global_hist & self._mask)) & 1)
        if self._noise and ctx.rng.below(4096) < self._noise:
            taken = not taken
        return taken


class RandomBehavior(Behavior):
    """Irreducible noise: taken with probability p, uncorrelated."""

    def __init__(self, taken_probability: float = 0.5) -> None:
        if not 0.0 <= taken_probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._threshold = int(round(taken_probability * 4096))

    def evaluate(self, branch_id: int, ctx: ExecContext) -> bool:
        return ctx.rng.below(4096) < self._threshold


class LoopTripBehavior:
    """Trip-count model for loops: base count plus a context-dependent part.

    The same loop iterates a different (but per-context fixed) number of
    times depending on where it was called from, which creates
    long-history loop-exit patterns that the loop predictor alone cannot
    fully capture.
    """

    def __init__(self, base: int, spread: int = 0, context_dependent: bool = True) -> None:
        if base < 1:
            raise ValueError("base trip count must be >= 1")
        if spread < 0:
            raise ValueError("spread must be >= 0")
        self.base = base
        self.spread = spread
        self.context_dependent = context_dependent

    def trip_count(self, loop_id: int, ctx: ExecContext) -> int:
        if self.spread == 0:
            return self.base
        if self.context_dependent:
            return self.base + splitmix64(loop_id ^ ctx.partial_path(2)) % (self.spread + 1)
        return self.base + ctx.rng.below(self.spread + 1)
