"""The 14-workload catalog (paper Table I) and trace caching.

Each entry parameterises the synthetic server-program model to echo the
qualitative character of the corresponding paper workload: the Java server
suites get large branch working sets, the Google production traces
(Charlie/Delta/Merced/Whiskey) get the largest working sets and the most
complex branches, NodeApp gets strong context locality (it shows the
largest LLBP gain in the paper), Kafka is the easy outlier with the lowest
MPKI, and PHPWiki leans on indirect dispatch (its pipeline resets hurt
LLBP prefetching most in the paper).

Traces are deterministic in (spec, instruction budget) and cached on disk
so the benchmark harness can share generation work across figures.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro import telemetry
from repro.traces import store
from repro.traces.io import load_trace, save_trace
from repro.traces.trace import Trace
from repro.workloads import adversarial
from repro.workloads.adversarial import AdversarialSpec
from repro.workloads.builder import WorkloadSpec, build_program
from repro.workloads.generator import generate_trace

#: Default instruction budget per workload trace.  The paper simulates
#: 200M instructions; shapes stabilise far earlier with the proportionally
#: scaled synthetic working sets (DESIGN.md §1).
DEFAULT_INSTRUCTIONS = 2_000_000

WORKLOADS: Dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    if spec.name in WORKLOADS:
        raise ValueError(f"duplicate workload {spec.name!r}")
    WORKLOADS[spec.name] = spec


_register(WorkloadSpec(
    name="NodeApp", seed=101,
    num_handlers=10, num_services=36, num_leaves=250,
    num_complex=150, complex_local_bits=2, complex_noise=0.01,
    indirect_fraction=0.20, dispatch_skew=0.7,
    description="NodeJS online shop; strong context locality, biggest LLBP win",
))
_register(WorkloadSpec(
    name="PHPWiki", seed=102,
    num_handlers=14, num_services=44, num_leaves=160,
    num_complex=210, complex_noise=0.03,
    indirect_fraction=0.45, call_fanout=5, dispatch_skew=0.5,
    description="PHP MediaWiki; heavy indirect dispatch resets prefetching",
))
_register(WorkloadSpec(
    name="TPCC", seed=103,
    num_handlers=8, num_services=40, num_leaves=140,
    num_complex=100, loop_probability=0.14, loop_spread=6,
    description="OLTP transactions; loopy with moderate working set",
))
_register(WorkloadSpec(
    name="Twitter", seed=104,
    num_handlers=12, num_services=48, num_leaves=250,
    num_complex=110, global_noise=0.025,
    description="BenchBase Twitter; moderate working set",
))
_register(WorkloadSpec(
    name="Wikipedia", seed=105,
    num_handlers=12, num_services=52, num_leaves=160,
    num_complex=210, behavior_weights={"biased": 60, "local": 2, "global": 33, "random": 5},
    description="BenchBase Wikipedia; slightly noisier mix",
))
_register(WorkloadSpec(
    name="Kafka", seed=106,
    num_handlers=6, num_services=24, num_leaves=80,
    num_complex=40, complex_noise=0.01,
    behavior_weights={"biased": 74, "local": 2, "global": 23, "random": 1},
    description="DaCapo Kafka; small working set, lowest MPKI",
))
_register(WorkloadSpec(
    name="Spring", seed=107,
    num_handlers=16, num_services=60, num_leaves=250,
    num_complex=210, min_stmts=9, max_stmts=20,
    description="DaCapo Spring; deep framework call chains",
))
_register(WorkloadSpec(
    name="Tomcat", seed=108,
    num_handlers=18, num_services=70, num_leaves=220,
    num_complex=180, min_stmts=9, max_stmts=20,
    description="DaCapo Tomcat; largest Java working set (paper's Fig 3 subject)",
))
_register(WorkloadSpec(
    name="Chirper", seed=109,
    num_handlers=10, num_services=40, num_leaves=130,
    num_complex=100,
    description="Renaissance finagle-chirper",
))
_register(WorkloadSpec(
    name="HTTP", seed=110,
    num_handlers=10, num_services=36, num_leaves=120,
    num_complex=90, behavior_weights={"biased": 64, "local": 2, "global": 31, "random": 3},
    description="Renaissance finagle-http",
))
_register(WorkloadSpec(
    name="Charlie", seed=111,
    num_handlers=20, num_services=80, num_leaves=250,
    num_complex=220, complex_local_bits=3, min_stmts=10, max_stmts=22,
    description="Google production trace; very large working set",
))
_register(WorkloadSpec(
    name="Delta", seed=112,
    num_handlers=18, num_services=72, num_leaves=240,
    num_complex=190, global_noise=0.03, min_stmts=10, max_stmts=22,
    description="Google production trace",
))
_register(WorkloadSpec(
    name="Merced", seed=113,
    num_handlers=16, num_services=70, num_leaves=220,
    num_complex=210, complex_local_bits=2, complex_noise=0.015,
    description="Google production trace; second-biggest LLBP win in the paper",
))
_register(WorkloadSpec(
    name="Whiskey", seed=114,
    num_handlers=20, num_services=84, num_leaves=260,
    num_complex=200, behavior_weights={"biased": 56, "local": 2, "global": 36, "random": 6},
    min_stmts=10, max_stmts=22,
    description="Google production trace; highest MPKI",
))


def workload_names() -> List[str]:
    """All workload names in the paper's presentation order."""
    return list(WORKLOADS.keys())


def get_spec(name: str):
    """The spec behind ``name``: a catalog :class:`WorkloadSpec` or, for
    ``adv:`` names, a parsed :class:`AdversarialSpec` (both carry the
    ``name``/``seed``/``description`` the runner and workers rely on)."""
    if adversarial.is_adversarial(name):
        return adversarial.parse_adv_name(name)
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(WORKLOADS)} "
            f"(plus generated {adversarial.ADV_PREFIX}* stressors)"
        ) from None


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-llbp"


def generate_workload(
    name: str,
    instructions: int = DEFAULT_INSTRUCTIONS,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
) -> Trace:
    """Generate (or load from cache) the trace for workload ``name``.

    The cache backend is the packed-binary store (:mod:`repro.traces.store`)
    — content-addressed, checksum-verified, memory-mapped on load so
    concurrent workers share pages.  ``REPRO_TRACE_STORE=0`` falls back to
    the legacy ``.npz`` cache; either way a corrupt cache entry is treated
    as a miss and regenerated, never trusted.
    """
    spec = get_spec(name)
    if isinstance(spec, AdversarialSpec):
        # One canonical spelling per stressor keeps one cache entry.
        name = spec.name
    trace_store = None
    cache_path = None
    if use_cache:
        directory = cache_dir if cache_dir is not None else _cache_dir()
        if store.enabled():
            trace_store = store.TraceStore(directory / "traces")
            cached = trace_store.load(name, spec.seed, instructions)
            if cached is not None:
                telemetry.emit("trace.cache", workload=name,
                               instructions=instructions, hit=True)
                return cached
        else:
            safe = name.replace(":", "_").replace(",", "+").replace("=", "-")
            cache_path = directory / f"{safe}-s{spec.seed}-i{instructions}-v4.npz"
            if cache_path.exists():
                telemetry.emit("trace.cache", workload=name,
                               instructions=instructions, hit=True)
                return load_trace(cache_path)
    start = time.perf_counter() if telemetry.enabled() else 0.0
    if isinstance(spec, AdversarialSpec):
        trace = adversarial.generate_adversarial(spec, instructions)
    else:
        program = build_program(spec)
        trace = generate_trace(program, instructions, seed=spec.seed, name=name)
    telemetry.emit("trace.cache", workload=name, instructions=instructions,
                   hit=False, seconds=time.perf_counter() - start)
    if trace_store is not None:
        trace_store.store(trace, name, spec.seed, instructions)
    elif cache_path is not None:
        save_trace(trace, cache_path)
    return trace
