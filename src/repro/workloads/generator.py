"""Trace generation: interpret a synthetic program into a branch trace.

The interpreter walks the program's statements, consulting each branch's
behaviour for directions and the seeded RNG for indirect-call dispatch,
and emits one :class:`~repro.traces.types.BranchRecord` per retired
branch.  The entry function is re-executed until the instruction budget is
reached, which models a server's request loop.
"""

from __future__ import annotations

from typing import Optional

from repro.common.rng import XorShift32
from repro.traces.trace import Trace, TraceBuilder
from repro.traces.types import BranchType
from repro.workloads.behaviors import Behavior, ExecContext
from repro.workloads.program import (
    INSTR_BYTES,
    CallStmt,
    ComputeStmt,
    CondStmt,
    IfStmt,
    JumpStmt,
    LoopStmt,
    Program,
    Stmt,
)

_MAX_CALL_DEPTH = 64


class _BudgetExhausted(Exception):
    """Raised internally when the instruction budget is consumed."""


class _Interpreter:
    def __init__(self, program: Program, budget: int, seed: int,
                 builder: TraceBuilder) -> None:
        self.program = program
        self.budget = budget
        self.builder = builder
        self.rng = XorShift32(seed)
        self.ctx = ExecContext(XorShift32(seed ^ 0x5DEECE66))
        self.instructions = 0
        self._gap = 0  # instructions since the last emitted branch

    # -- record emission ---------------------------------------------------

    def _emit(self, pc: int, branch_type: BranchType, taken: bool,
              target: int) -> None:
        gap = self._gap + 1
        self._gap = 0
        self.instructions += gap
        self.builder.append(pc, branch_type, taken, target, gap)
        if self.instructions >= self.budget:
            raise _BudgetExhausted

    def _compute(self, instrs: int) -> None:
        self._gap += instrs
        # Straight-line code alone can't exhaust the budget mid-statement;
        # the check at branch boundaries keeps gaps consistent.

    # -- statement execution -----------------------------------------------

    def run(self) -> None:
        entry = self.program.function(self.program.entry_function)
        try:
            while True:
                self._execute_body(entry.body, depth=0)
        except _BudgetExhausted:
            pass

    def _execute_body(self, body, depth: int) -> None:
        for stmt in body:
            self._execute(stmt, depth)

    def _execute(self, stmt: Stmt, depth: int) -> None:
        if isinstance(stmt, ComputeStmt):
            self._compute(stmt.instrs)
        elif isinstance(stmt, CondStmt):
            taken = stmt.behavior.evaluate(stmt.branch_id, self.ctx)
            self.ctx.record_outcome(taken)
            self._emit(stmt.pc, BranchType.COND, taken, stmt.target)
        elif isinstance(stmt, IfStmt):
            taken = stmt.behavior.evaluate(stmt.branch_id, self.ctx)
            self.ctx.record_outcome(taken)
            self._emit(stmt.pc, BranchType.COND, taken, stmt.target)
            if not taken:
                self._execute_body(stmt.body, depth)
        elif isinstance(stmt, LoopStmt):
            trips = stmt.trip.trip_count(stmt.branch_id, self.ctx)
            for i in range(trips):
                self._execute_body(stmt.body, depth)
                taken = i + 1 < trips  # back-edge taken while continuing
                self.ctx.record_outcome(taken)
                self._emit(stmt.pc, BranchType.COND, taken,
                           stmt.target if taken else stmt.pc + INSTR_BYTES)
        elif isinstance(stmt, CallStmt):
            self._execute_call(stmt, depth)
        elif isinstance(stmt, JumpStmt):
            self._emit(stmt.pc, BranchType.JUMP, True, stmt.target)
        else:  # pragma: no cover - exhaustive over Stmt
            raise TypeError(f"unknown statement {stmt!r}")

    def _execute_call(self, stmt: CallStmt, depth: int) -> None:
        if depth >= _MAX_CALL_DEPTH:
            # Bounded model: skip calls past the depth limit (real servers
            # bottom out too; the builder never builds graphs this deep).
            self._compute(1)
            return
        callee_id = self._dispatch(stmt)
        callee = self.program.function(callee_id)
        branch_type = BranchType.IND_CALL if stmt.is_indirect else BranchType.CALL
        self._emit(stmt.pc, branch_type, True, callee.entry)
        self.ctx.push_call(callee_id)
        try:
            self._execute_body(callee.body, depth + 1)
            self._emit(callee.return_pc, BranchType.RET, True,
                       stmt.pc + INSTR_BYTES)
        finally:
            self.ctx.pop_call()

    def _dispatch(self, stmt: CallStmt) -> int:
        if not stmt.is_indirect:
            return stmt.callees[0]
        if stmt.weights is None:
            return stmt.callees[self.rng.below(len(stmt.callees))]
        total = sum(stmt.weights)
        pick = self.rng.below(total)
        for callee, weight in zip(stmt.callees, stmt.weights):
            pick -= weight
            if pick < 0:
                return callee
        return stmt.callees[-1]  # pragma: no cover - defensive


def _reset_behaviors(program: Program) -> None:
    def walk(body) -> None:
        for stmt in body:
            behavior: Optional[Behavior] = getattr(stmt, "behavior", None)
            if behavior is not None:
                behavior.reset()
            inner = getattr(stmt, "body", None)
            if inner is not None:
                walk(inner)

    for fn in program.functions:
        walk(fn.body)


def generate_trace(program: Program, instructions: int, seed: int = 1,
                   name: str = "synthetic") -> Trace:
    """Interpret ``program`` for ``instructions`` retired instructions.

    The result is deterministic in ``(program, instructions, seed)``.
    """
    if instructions <= 0:
        raise ValueError("instruction budget must be positive")
    _reset_behaviors(program)
    builder = TraceBuilder(name=name)
    _Interpreter(program, instructions, seed, builder).run()
    return builder.build()
