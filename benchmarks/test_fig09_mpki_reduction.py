"""Fig 9: the headline result — LLBP's MPKI reduction over 64K TSL."""

from repro.experiments import fig09


def test_fig09_mpki_reduction(benchmark, report):
    rows = benchmark.pedantic(fig09.run, rounds=1, iterations=1)
    report(
        "Figure 9 — branch MPKI reduction over 64K TSL",
        "LLBP 0.5-25.9% (avg 8.9%); LLBP-0Lat avg 9.9%; 512K TSL avg 27.3%",
        fig09.format_rows(rows),
    )
    mean = rows[-1]

    # Shape: LLBP wins on average, and the equally-sized (but
    # impractical) 512K TSL wins by more.
    assert mean["LLBP"] > 0.0
    assert mean["512K TSL"] > mean["LLBP"]
    # LLBP's prefetching keeps the timed design near the 0-latency ideal.
    assert mean["LLBP"] > 0.5 * mean["LLBP-0Lat"]
