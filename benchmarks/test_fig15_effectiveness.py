"""Fig 15: breakdown of LLBP predictions."""

from repro.experiments import fig15


def test_fig15_effectiveness(benchmark, report):
    data = benchmark.pedantic(fig15.run, rounds=1, iterations=1)
    report(
        "Figure 15 — LLBP prediction breakdown (% of conditional predictions)",
        "provides 14.8%; overrides 77% of those; 6.8% of overrides bad; "
        "59% redundant",
        fig15.format_rows(data),
    )
    mean = data["rows"][-1]

    # LLBP targets the hard minority: it provides for a modest share.
    assert 3.0 < mean["provided_pct"] < 40.0
    # Most provided predictions override (same-or-longer history).
    assert mean["override_rate_pct"] > 50.0
    # Overrides are mostly correct...
    assert mean["bad_share_pct"] < 20.0
    # ...and a large share is redundant (the paper's storage-efficiency
    # observation).
    assert mean["redundant_share_pct"] > 40.0
    # Good overrides outnumber bad ones — the net win of Fig 9.
    assert mean["good_pct"] > mean["bad_pct"]
