"""Fig 13: CID history source x prefetch distance sensitivity."""

from repro.experiments import fig13


def test_fig13_cid_sensitivity(benchmark, report):
    rows = benchmark.pedantic(fig13.run, rounds=1, iterations=1)
    report(
        "Figure 13 — CID source and prefetch distance D",
        "Uncond peaks at D=4 (8.9%); Call/Ret coarser; All degrades with D",
        fig13.format_rows(rows),
    )
    table = {(r["source"], r["D"]): r["mpki_reduction_pct"] for r in rows}

    # Prefetch distance is what makes timed LLBP work: every source gains
    # from D=4 over D=0 (the paper's key timing observation).
    for source in ("uncond", "callret", "all"):
        if (source, 0) in table and (source, 4) in table:
            assert table[(source, 4)] >= table[(source, 0)] - 0.5
    # The paper's pick works: uncond with D=4 is solidly positive.
    assert table[("uncond", 4)] > 2.0
    # NOTE: the paper's "All degrades with D" finding does NOT reproduce
    # on the synthetic substrate — conditional-branch PC sequences are
    # deterministic enough here that fine-grained contexts stay
    # informative instead of noisy (EXPERIMENTS.md, Fig 13).
