"""Fig 3: working-set study (Tomcat): capacity scaling + useful patterns."""

from repro.experiments import fig03


def test_fig03_working_set(benchmark, report):
    data = benchmark.pedantic(fig03.run, rounds=1, iterations=1)
    report(
        "Figure 3 — mispredictions and useful patterns per static branch",
        "top 0.8% of branches ≈ 40% of misses; doublings shave ~4-7% each; "
        "Inf ≈ -35%; ~14 useful patterns/branch avg, top-100 >100",
        fig03.format_rows(data),
    )
    rows = {r["config"]: r for r in data["rows"]}

    # Mispredictions concentrate on the hottest branches.
    assert rows["tsl64"]["top_branch_share"] > 0.15

    # Capacity monotonically reduces misses; each doubling helps some.
    ladder = ["tsl64", "tsl128", "tsl256", "tsl512", "tsl1m", "inf-tsl"]
    misses = [rows[c]["misses_vs_64k"] for c in ladder]
    assert all(b <= a * 1.02 for a, b in zip(misses, misses[1:]))
    assert rows["inf-tsl"]["reduction_vs_64k_pct"] > 15.0

    # Useful-pattern skew: the most-mispredicted branches need more
    # patterns than the average branch.  (The skew is compressed vs the
    # paper's ~7x on synthetic workloads — see EXPERIMENTS.md.)
    assert data["patterns_mean"] >= 2.0
    assert data["patterns_top100_mean"] > 1.3 * data["patterns_mean"]
