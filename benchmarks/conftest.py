"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures, prints
its rows next to the paper's reported numbers, and asserts the *shape* —
who wins, by roughly what factor — rather than absolute values (the
substrate is a synthetic-workload simulator, not the authors' testbed;
see DESIGN.md §1 and EXPERIMENTS.md).

Environment knobs: REPRO_WORKLOADS (default: 6-workload subset; ``all``
for the full suite), REPRO_INSTRUCTIONS (default 800000).  Simulation
results are cached on disk, so re-runs are cheap.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session", autouse=True)
def prewarm_result_cache():
    """Fan the figures' simulations across cores before benchmarks run.

    On a multi-core machine (or with REPRO_JOBS > 1) this fills the
    result cache in parallel, so the per-figure benchmarks — which call
    the serial ``get_result`` path — become cache hits.  On a single
    core (or REPRO_JOBS=1) it is a no-op and benchmarks simulate inline,
    exactly as before.
    """
    from repro import parallel

    workers = parallel.default_jobs()
    if workers > 1:
        from repro.experiments import (
            fig01, fig02, fig03, fig05, fig09, fig10, fig11, fig12, fig13,
            fig14, fig15,
        )

        pairs = []
        for module in (fig01, fig02, fig03, fig05, fig09, fig10, fig11,
                       fig12, fig13, fig14, fig15):
            pairs.extend(module.jobs())
        parallel.run_jobs(parallel.make_jobs(pairs), max_workers=workers)
    yield
    parallel.shutdown()


@pytest.fixture
def report(pytestconfig):
    """Print an experiment table past pytest's output capture.

    pytest captures file descriptors by default, so a plain ``print``
    would be swallowed unless ``-s`` is given; the capture manager's
    disable context routes the tables to the real stdout either way.
    """
    capman = pytestconfig.pluginmanager.getplugin("capturemanager")

    def print_experiment(title: str, paper: str, body: str) -> None:
        bar = "=" * 78
        text = f"\n{bar}\n{title}\n  paper: {paper}\n{bar}\n{body}"
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(text, flush=True)
        else:  # pragma: no cover - capture plugin always present
            print(text, flush=True)

    return print_experiment
