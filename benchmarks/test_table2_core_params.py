"""Table II: simulated processor parameters."""

from repro.experiments import tables


def test_table2_core_params(benchmark, report):
    rows = benchmark.pedantic(tables.table2, rounds=1, iterations=1)
    report(
        "Table II — simulated processor parameters",
        "4GHz 6-way OoO, 512 ROB, 248/122 LQ/SQ, 16K-entry BTB, "
        "32KiB L1-I / 48KiB L1-D / 2MiB L2 / 8MiB LLC",
        tables.format_table2(rows),
    )
    text = " ".join(str(r["value"]) for r in rows)
    for expected in ("4GHz", "6-way", "512 ROB", "16K entry",
                     "32KiB", "2MiB L2", "8MiB LLC"):
        assert expected in text
