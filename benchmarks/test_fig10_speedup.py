"""Fig 10: speedup over 64K TSL (analytic core model)."""

from repro.experiments import fig10


def test_fig10_speedup(benchmark, report):
    rows = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    report(
        "Figure 10 — speedup over 64K TSL",
        "LLBP +0.63%, LLBP-0Lat +0.71%, 512K TSL +1.26%, perfect BP +3.6% "
        "(paper notes its core model under-reports the perfect-BP headroom)",
        fig10.format_rows(rows),
    )
    mean = rows[-1]
    # Ordering: baseline < LLBP <= 512K TSL < perfect.
    assert mean["LLBP"] > 1.0
    assert mean["512K TSL"] >= mean["LLBP"]
    assert mean["Perfect BP"] > mean["512K TSL"]
    # Magnitudes stay in the single-digit-percent regime.
    assert mean["Perfect BP"] < 1.5
