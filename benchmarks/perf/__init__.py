"""Throughput harness for the simulation engine (see harness.py)."""
