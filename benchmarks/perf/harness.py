"""Engine throughput harness: branches/sec per predictor + figure wall-clock.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/harness.py            # full, updates BENCH_engine.json
    PYTHONPATH=src python benchmarks/perf/harness.py --quick    # subset, prints only

Two measurements feed the perf trajectory file ``BENCH_engine.json``:

* ``branches_per_sec`` — best-of-N wall-clock of ``run_simulation`` over a
  fixed Kafka trace, per predictor key.  ``engine-null`` drives a no-op
  predictor, so it isolates the engine loop itself; the other keys add
  each predictor family's per-branch cost on top.
* ``fig09_seconds`` — end-to-end ``fig09.run()`` with a cold result cache
  (traces pre-generated off the clock), i.e. what a user waits for.

Full mode also measures the ``array_engine`` section: branches/sec for
the keys the array engine runs natively, each verified bit-identical to
the Python engine in the same invocation (``bit_identical`` records the
verdict, ``speedup_vs_python`` the ratio against ``after``).

Separate ``--sweep-only`` / ``--distributed-only`` / ``--server-only`` /
``--families-only`` / ``--characterize-only`` modes measure the
batched-runner sweep, the loopback-TCP worker fleets, the
``repro.server`` daemon, the Bi-Mode/perceptron families, and the
characterization pipeline respectively, each updating only its own
section of the trajectory file (``batched_sweep`` / ``distributed_sweep``
/ ``server_sweep`` / ``new_families`` / ``characterization``).

Best-of-N is deliberate: on shared/noisy machines the *minimum* runtime is
the least contaminated estimate of the code's true cost.  The committed
``BENCH_engine.json`` keeps the pre-optimization numbers under ``before``
so every future PR can see the trajectory; rerunning this harness rewrites
only ``after``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"

# Measurement configuration — keep in sync with the committed baseline;
# numbers are only comparable when these match.
TRACE_NAME = "Kafka"
TRACE_INSTRUCTIONS = 400_000
FIG09_WORKLOADS = "NodeApp,PHPWiki,Kafka"
FIG09_INSTRUCTIONS = 200_000

FULL_KEYS = ("engine-null", "bimodal", "gshare", "tsl64", "llbp")
QUICK_KEYS = ("engine-null", "bimodal", "tsl64", "llbp")

#: Keys the array engine supports natively (everything else falls back
#: to the Python loop, so measuring it there would be meaningless).
ARRAY_KEYS = ("gshare", "tsl64", "llbp")

#: The scenario-diversity families (Bi-Mode, hashed perceptron) recorded
#: in the ``new_families`` section: python and array throughput plus the
#: bit-identity verdict.
NEW_FAMILY_KEYS = ("bimode", "percep")

# Batched-sweep configuration: a fig09-style grid — several workloads,
# the TAGE-SC-L baseline, both LLBP timing variants, and the scaled
# baseline — which is where the shared-trace batch engine concentrates
# its wins (fold/lookup sharing across the TAGE-family members).
SWEEP_WORKLOADS = ("NodeApp", "PHPWiki", "TPCC", "Twitter", "Kafka",
                   "Tomcat")
SWEEP_KEYS = ("tsl64", "llbp", "tsl512", "llbp:lat0")
SWEEP_INSTRUCTIONS = 200_000


def _null_predictor():
    from repro.predictors.base import BranchPredictor

    class NullPredictor(BranchPredictor):
        """All-taken no-op predictor: measures pure engine overhead."""

        name = "engine-null"

        def predict(self, pc):
            return True

        def train(self, pc, taken, meta):
            pass

        def update_history(self, pc, branch_type, taken, target):
            pass

    return NullPredictor()


def _predictor(key):
    if key == "engine-null":
        return _null_predictor()
    from repro.predictors.registry import make_predictor

    return make_predictor(key)


def measure_branches_per_sec(keys=FULL_KEYS, reps=5, trace=None):
    """Best-of-``reps`` branches/sec for each predictor key."""
    from repro.sim.engine import run_simulation
    from repro.workloads.catalog import generate_workload

    if trace is None:
        trace = generate_workload(TRACE_NAME, TRACE_INSTRUCTIONS)
    out = {}
    for key in keys:
        best = 0.0
        for _ in range(reps):
            predictor = _predictor(key)  # fresh tables every rep
            t0 = time.perf_counter()
            run_simulation(trace, predictor)
            best = max(best, len(trace) / (time.perf_counter() - t0))
        out[key] = round(best)
        print(f"  {key:<12} {out[key]:>12,} branches/sec", flush=True)
    return out


def measure_array_engine(keys=ARRAY_KEYS, reps=5, trace=None):
    """Array-engine branches/sec per key plus a bit-identity verdict.

    Identity is checked once per key against the Python engine with
    per-PC collection on (full ``SimulationResult`` equality including
    dict insertion order); throughput is then best-of-``reps`` without
    per-PC collection, matching how ``measure_branches_per_sec`` times
    the Python engine.  The first rep pays the column precompute; the
    best-of discards it, mirroring a warm result cache.
    """
    from repro.sim.engine import run_simulation
    from repro.workloads.catalog import generate_workload

    if trace is None:
        trace = generate_workload(TRACE_NAME, TRACE_INSTRUCTIONS)
    rates = {}
    identical = True
    for key in keys:
        ref = run_simulation(trace, _predictor(key), engine="python",
                             collect_per_pc=True)
        res = run_simulation(trace, _predictor(key), engine="array",
                             collect_per_pc=True)
        same = (
            res == ref
            and list(res.per_pc_mispredictions.items())
            == list(ref.per_pc_mispredictions.items())
            and list(res.per_pc_executions.items())
            == list(ref.per_pc_executions.items()))
        identical = identical and same
        best = 0.0
        for _ in range(reps):
            predictor = _predictor(key)  # fresh tables every rep
            t0 = time.perf_counter()
            run_simulation(trace, predictor, engine="array")
            best = max(best, len(trace) / (time.perf_counter() - t0))
        rates[key] = round(best)
        print(f"  {key:<12} {rates[key]:>12,} branches/sec (array)  "
              f"{'bit-identical' if same else 'DIVERGED'}", flush=True)
    return {"branches_per_sec": rates, "bit_identical": identical}


def measure_new_families(keys=NEW_FAMILY_KEYS, reps=5, trace=None):
    """Python vs array throughput + bit-identity for the scenario-
    diversity families (Bi-Mode, hashed perceptron)."""
    from repro.workloads.catalog import generate_workload

    if trace is None:
        trace = generate_workload(TRACE_NAME, TRACE_INSTRUCTIONS)
    python_rates = measure_branches_per_sec(keys, reps=reps, trace=trace)
    array = measure_array_engine(keys, reps=reps, trace=trace)
    return {
        "python_branches_per_sec": python_rates,
        "array_branches_per_sec": array["branches_per_sec"],
        "speedup_vs_python": {
            key: round(array["branches_per_sec"][key] / python_rates[key], 1)
            for key in keys},
        "bit_identical": array["bit_identical"],
    }


def measure_characterization(winner_instructions=120_000):
    """The characterization pipeline's trajectory facts: the pinned
    metrics-only digest (the byte-determinism evidence bench gates on),
    its cost, and the predicted-winner hit rate over the full catalog on
    the array engine at a budget past LLBP's prefetch warmup."""
    from repro.analysis.characterize import (BENCH_INSTRUCTIONS,
                                             BENCH_WORKLOADS, bench_digest,
                                             characterize)
    from repro.experiments.runner import clear_memory_cache

    t0 = time.perf_counter()
    digest = bench_digest()
    digest_seconds = round(time.perf_counter() - t0, 2)
    print(f"  digest       {digest[:16]}… ({digest_seconds}s)", flush=True)

    saved = os.environ.get("REPRO_ENGINE")
    os.environ["REPRO_ENGINE"] = "array"
    try:
        clear_memory_cache()
        t0 = time.perf_counter()
        artifact = characterize(instructions=winner_instructions)
    finally:
        if saved is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = saved
    entries = artifact["workloads"]
    hits = sum(entry["predicted_winner"] == entry["measured_winner"]
               for entry in entries.values())
    sweep_seconds = round(time.perf_counter() - t0, 2)
    print(f"  winner rule  {hits}/{len(entries)} at "
          f"{winner_instructions:,} instructions ({sweep_seconds}s)",
          flush=True)
    return {
        "digest_workloads": ",".join(BENCH_WORKLOADS),
        "digest_instructions": BENCH_INSTRUCTIONS,
        "digest_sha256": digest,
        "digest_seconds": digest_seconds,
        "winner_instructions": winner_instructions,
        "winner_hits": hits,
        "winner_total": len(entries),
        "winner_sweep_seconds": sweep_seconds,
    }


def measure_batched_pass(keys, trace, reps=2):
    """Engine-level serial-vs-batched A/B on one trace (bench.py gate).

    Returns ``(serial_seconds, batched_seconds, bit_identical)`` with
    each side best-of-``reps``, alternating the two sides within each
    rep so both sample the same noise regime on a shared box.
    """
    from repro.sim.engine import run_simulation
    from repro.sim.multi import run_simulation_batch

    serial_best = batched_best = float("inf")
    identical = True
    for _ in range(reps):
        t0 = time.perf_counter()
        serial = [run_simulation(trace, _predictor(key),
                                 collect_per_pc=True) for key in keys]
        serial_best = min(serial_best, time.perf_counter() - t0)

        t0 = time.perf_counter()
        batched = run_simulation_batch(
            trace, [_predictor(key) for key in keys], collect_per_pc=True)
        batched_best = min(batched_best, time.perf_counter() - t0)
        identical = identical and batched == serial
    return serial_best, batched_best, identical


def measure_batched_sweep(workloads=SWEEP_WORKLOADS, keys=SWEEP_KEYS,
                          instructions=SWEEP_INSTRUCTIONS, rounds=2):
    """Cold-result-cache sweep: per-job runner path vs batched runner path.

    Every (workload, key) result is simulated through the *runner* on
    both sides — ``get_result`` per job vs one ``run_batch`` per
    workload — so the comparison includes everything a real figure run
    pays per job (trace-cache load, predictor construction, per-PC
    collection), not just the inner loop.  Traces are pre-published to
    the packed store off the clock; the result cache stays cold
    (``REPRO_RESULT_CACHE=0``).  Both sides must be *byte*-identical:
    the serialised cache JSON is compared, not just the result values.
    """
    import json as _json

    from repro.experiments import runner
    from repro.workloads.catalog import generate_workload

    for workload in workloads:
        generate_workload(workload, instructions)

    saved = os.environ.get("REPRO_RESULT_CACHE")
    os.environ["REPRO_RESULT_CACHE"] = "0"
    serial_best = batched_best = float("inf")
    identical = True
    try:
        for _ in range(rounds):
            runner.clear_memory_cache()
            t0 = time.perf_counter()
            serial = {(w, k): runner.get_result(w, k, instructions)
                      for w in workloads for k in keys}
            serial_best = min(serial_best, time.perf_counter() - t0)

            runner.clear_memory_cache()
            t0 = time.perf_counter()
            batched = {}
            for w in workloads:
                for k, result in zip(keys,
                                     runner.run_batch(w, keys, instructions)):
                    batched[(w, k)] = result
            batched_best = min(batched_best, time.perf_counter() - t0)

            identical = identical and all(
                _json.dumps(runner._to_json(batched[pair]), sort_keys=False)
                == _json.dumps(runner._to_json(serial[pair]),
                               sort_keys=False)
                for pair in serial)
    finally:
        runner.clear_memory_cache()
        if saved is None:
            del os.environ["REPRO_RESULT_CACHE"]
        else:
            os.environ["REPRO_RESULT_CACHE"] = saved

    out = {
        "workloads": ",".join(workloads),
        "keys": ",".join(keys),
        "instructions": instructions,
        "serial_seconds": round(serial_best, 2),
        "batched_seconds": round(batched_best, 2),
        "speedup": round(serial_best / batched_best, 2),
        "byte_identical": identical,
    }
    print(f"  batched sweep: serial {out['serial_seconds']}s, "
          f"batched {out['batched_seconds']}s "
          f"({out['speedup']}x, byte_identical={identical})", flush=True)
    return out


def measure_distributed_sweep(worker_counts=(1, 2, 4),
                              workloads=FIG09_WORKLOADS,
                              instructions=FIG09_INSTRUCTIONS):
    """Fig09 sweep over loopback TCP worker fleets vs cold serial.

    For each count in ``worker_counts`` a fresh ``TCPBackend`` spawns
    that many ``python -m repro.worker`` loopback processes (joined
    *before* the clock starts) and runs the full fig09 job grid through
    ``parallel.run_jobs``; the serial side recomputes the same grid
    in-process with the result cache off.  Traces are pre-published to
    the shared store off the clock, so workers resolve them by hash and
    no trace bytes cross the socket — the measurement isolates task
    dispatch + simulation + result streaming.

    Every distributed run must be **byte-identical** to serial: the
    journal's sha256 ``result_digest`` of every job is compared, not
    just the MPKI values.

    Besides measured speedups the section records
    ``projected_speedup_2_workers``: with per-fleet overhead
    ``t1 - serial`` (the 1-worker run measures everything distribution
    adds: framing, digests, scheduling) and perfectly split compute,
    2 workers on 2 cores would take ``serial/2 + overhead``.  On a
    single-core box (``host_cpus == 1``) the *measured* 2-worker speedup
    is physically capped at ~1x, so the projection is what the scaling
    gate in ``scripts/bench.py`` falls back to there.
    """
    from repro import parallel
    from repro.experiments import fig09, runner
    from repro.experiments.journal import result_digest
    from repro.parallel.backend.tcp import TCPBackend
    from repro.workloads.catalog import generate_workload

    os.environ["REPRO_WORKLOADS"] = workloads
    os.environ["REPRO_INSTRUCTIONS"] = str(instructions)
    for workload in workloads.split(","):
        generate_workload(workload, instructions)

    saved = os.environ.get("REPRO_RESULT_CACHE")
    os.environ["REPRO_RESULT_CACHE"] = "0"
    try:
        runner.clear_memory_cache()
        jobs = parallel.make_jobs(fig09.jobs())
        t0 = time.perf_counter()
        serial = {job: result_digest(
            runner.get_result(job.workload, job.key, job.instructions))
            for job in jobs}
        serial_seconds = time.perf_counter() - t0
        runner.clear_memory_cache()
        print(f"  serial: {serial_seconds:.2f}s ({len(jobs)} jobs)",
              flush=True)

        out = {
            "workloads": workloads,
            "keys": ",".join(sorted({job.key for job in jobs})),
            "instructions": instructions,
            "jobs": len(jobs),
            "serial_seconds": round(serial_seconds, 2),
            "workers": {},
            "byte_identical": True,
        }
        for count in worker_counts:
            backend = TCPBackend(spawn=count)
            try:
                backend.wait_for_workers(count, timeout=60.0)
                runner.clear_memory_cache()
                t0 = time.perf_counter()
                by_job = parallel.run_jobs(jobs, backend=backend)
                elapsed = time.perf_counter() - t0
            finally:
                backend.close()
                parallel.shutdown()
            identical = ({job: result_digest(result)
                          for job, result in by_job.items()} == serial)
            out["byte_identical"] = out["byte_identical"] and identical
            speedup = serial_seconds / elapsed
            out["workers"][str(count)] = {
                "seconds": round(elapsed, 2),
                "speedup": round(speedup, 2),
                "efficiency": round(speedup / count, 2),
            }
            print(f"  tcp x{count}: {elapsed:.2f}s ({speedup:.2f}x, "
                  f"byte_identical={identical})", flush=True)

        one = out["workers"].get("1")
        if one:
            overhead = max(0.0, one["seconds"] - serial_seconds)
            out["distribution_overhead_seconds"] = round(overhead, 2)
            out["projected_speedup_2_workers"] = round(
                serial_seconds / (serial_seconds / 2 + overhead), 2)
        out["host_cpus"] = os.cpu_count()
        # Which number the scripts/bench.py scaling gate should trust:
        # the measured 2-worker run when this host can actually run two
        # workers on separate cores, the overhead projection otherwise.
        out["gate_basis"] = ("measured"
                             if (out["host_cpus"] or 1) >= 2
                             and "2" in out["workers"] else "projected")
        return out
    finally:
        runner.clear_memory_cache()
        if saved is None:
            del os.environ["REPRO_RESULT_CACHE"]
        else:
            os.environ["REPRO_RESULT_CACHE"] = saved


def measure_server_sweep(burst_jobs=200, clients=4,
                         workloads=FIG09_WORKLOADS,
                         instructions=FIG09_INSTRUCTIONS):
    """Daemon-served fig09 grid vs serial, plus a warm serving burst.

    Two measurements against one in-process :class:`ServerThread`:

    * **byte-identity** — the full fig09 job grid is submitted with
      full payloads and every served result's sha256 digest (recomputed
      *client-side* from the streamed body, so the check does not trust
      the server's word) is compared against a fresh serial computation
      with the result cache disabled.
    * **warm burst** — a closed-loop ``burst_jobs``-deep burst over the
      same grid with digest-detail replies, reported as p50/p95/p99
      submit-to-result latency and throughput.  The ping RTT p50 is
      recorded alongside as the *null* (framing + scheduling with no
      simulation in the loop); ``latency_vs_ping_p50`` is the
      machine-independent ratio the bench smoke gate compares against.
    """
    from repro import parallel
    from repro.experiments import fig09, runner
    from repro.experiments.journal import result_digest
    from repro.server import ServerConfig, ServerThread
    from repro.server.client import ServerClient, result_digests
    from repro.server.loadgen import build_jobs, measure_ping, run_load

    os.environ["REPRO_WORKLOADS"] = workloads
    os.environ["REPRO_INSTRUCTIONS"] = str(instructions)
    from repro.workloads.catalog import generate_workload

    for workload in workloads.split(","):
        generate_workload(workload, instructions)
    grid = [(job.workload, job.key, job.instructions)
            for job in parallel.make_jobs(fig09.jobs())]

    saved = os.environ.get("REPRO_RESULT_CACHE")
    os.environ["REPRO_RESULT_CACHE"] = "0"
    try:
        runner.clear_memory_cache()
        serial = {f"{w}|{k}|{i}": result_digest(runner.get_result(w, k, i))
                  for w, k, i in grid}
    finally:
        runner.clear_memory_cache()
        if saved is None:
            del os.environ["REPRO_RESULT_CACHE"]
        else:
            os.environ["REPRO_RESULT_CACHE"] = saved

    with ServerThread(ServerConfig.from_env(port=0)) as running:
        with ServerClient(running.address, tenant="harness") as client:
            outcome = client.submit(grid, detail="full")
        served = result_digests(outcome.results, verify=True)
        identical = served == serial and not outcome.errors
        print(f"  identity: {len(grid)} grid jobs served, "
              f"byte_identical={identical}", flush=True)

        burst = build_jobs(workloads.split(","),
                           sorted({k for _, k, _ in grid}),
                           instructions, burst_jobs)
        summary = run_load(running.address, burst, mode="closed",
                           clients=clients, detail="digest",
                           tenant="harness-burst")
        ping = measure_ping(running.address, count=50)

    latency = summary["latency_seconds"]
    out = {
        "workloads": workloads,
        "keys": ",".join(sorted({k for _, k, _ in grid})),
        "instructions": instructions,
        "grid_jobs": len(grid),
        "byte_identical": identical,
        "burst_jobs": summary["jobs"],
        "clients": summary["clients"],
        "throughput_jobs_per_sec": summary["throughput_jobs_per_sec"],
        "latency_seconds": {
            "p50": round(latency["p50"], 6),
            "p95": round(latency["p95"], 6),
            "p99": round(latency["p99"], 6),
        },
        "ping_seconds": {"p50": round(ping["p50"], 6)},
        "latency_vs_ping_p50": round(
            latency["p50"] / max(ping["p50"], 1e-9), 2),
        "burst_errors": summary["errors"],
        "host_cpus": os.cpu_count(),
    }
    print(f"  burst: {out['burst_jobs']} jobs at "
          f"{out['throughput_jobs_per_sec']} jobs/s, p50/p95/p99 "
          f"{latency['p50'] * 1e3:.2f}/{latency['p95'] * 1e3:.2f}/"
          f"{latency['p99'] * 1e3:.2f} ms "
          f"(ping p50 {ping['p50'] * 1e3:.2f} ms, ratio "
          f"{out['latency_vs_ping_p50']}x)", flush=True)
    return out


def measure_fig09_seconds(jobs=1):
    """Wall-clock of a cold-result-cache fig09 regeneration.

    Traces are generated (or loaded) before the clock starts, so the
    number isolates simulation + aggregation.  With ``jobs > 1`` the
    parallel prewarm runs inside the timed region, exactly as
    ``python -m repro.experiments fig09 -j N`` would.
    """
    os.environ["REPRO_WORKLOADS"] = FIG09_WORKLOADS
    os.environ["REPRO_INSTRUCTIONS"] = str(FIG09_INSTRUCTIONS)
    from repro import parallel
    from repro.experiments import fig09, runner
    from repro.workloads.catalog import generate_workload

    for workload in FIG09_WORKLOADS.split(","):
        generate_workload(workload, FIG09_INSTRUCTIONS)

    runner.clear_memory_cache()
    if jobs > 1:
        # Parallel path communicates results through the disk cache, so
        # it must stay enabled; point it at a throwaway dir to keep the
        # measurement cold.
        import tempfile

        with tempfile.TemporaryDirectory() as fresh:
            saved = os.environ.get("REPRO_CACHE_DIR")
            os.environ["REPRO_CACHE_DIR"] = fresh
            try:
                for workload in FIG09_WORKLOADS.split(","):
                    generate_workload(workload, FIG09_INSTRUCTIONS)
                t0 = time.perf_counter()
                parallel.run_jobs(parallel.make_jobs(fig09.jobs()),
                                  max_workers=jobs)
                fig09.run()
                elapsed = time.perf_counter() - t0
            finally:
                parallel.shutdown()
                if saved is None:
                    del os.environ["REPRO_CACHE_DIR"]
                else:
                    os.environ["REPRO_CACHE_DIR"] = saved
    else:
        os.environ["REPRO_RESULT_CACHE"] = "0"
        try:
            t0 = time.perf_counter()
            fig09.run()
            elapsed = time.perf_counter() - t0
        finally:
            del os.environ["REPRO_RESULT_CACHE"]
    runner.clear_memory_cache()
    print(f"  fig09 (jobs={jobs}) {elapsed:.2f}s", flush=True)
    return round(elapsed, 2)


def measure(quick=False, jobs=1):
    print("measuring branches/sec "
          f"({'quick' if quick else 'full'}, trace={TRACE_NAME} "
          f"x{TRACE_INSTRUCTIONS})", flush=True)
    data = {
        "branches_per_sec": measure_branches_per_sec(
            QUICK_KEYS if quick else FULL_KEYS, reps=2 if quick else 5),
    }
    if not quick:
        print("measuring fig09 end-to-end", flush=True)
        data["fig09_seconds"] = measure_fig09_seconds(jobs=jobs)
    return data


def _speedups(before, after):
    out = {}
    for key, base in before.get("branches_per_sec", {}).items():
        now = after.get("branches_per_sec", {}).get(key)
        if base and now:
            out[key] = round(now / base, 2)
    if before.get("fig09_seconds") and after.get("fig09_seconds"):
        out["fig09_end_to_end"] = round(
            before["fig09_seconds"] / after["fig09_seconds"], 2)
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer keys/reps, no end-to-end run; print only")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the fig09 measurement")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="perf trajectory file to update (full mode)")
    parser.add_argument("--fresh", action="store_true",
                        help="discard the previous 'after' numbers instead "
                             "of keeping the best of old and new")
    parser.add_argument("--sweep-only", action="store_true",
                        help="measure only the batched sweep and update its "
                             "section of the trajectory file")
    parser.add_argument("--distributed-only", action="store_true",
                        help="measure only the distributed (TCP-backend) "
                             "sweep and update its section of the "
                             "trajectory file")
    parser.add_argument("--server-only", action="store_true",
                        help="measure only the daemon-served sweep and "
                             "update its section of the trajectory file")
    parser.add_argument("--families-only", action="store_true",
                        help="measure only the Bi-Mode/perceptron families "
                             "(python vs array) and update the new_families "
                             "section of the trajectory file")
    parser.add_argument("--characterize-only", action="store_true",
                        help="measure only the characterization digest and "
                             "winner hit rate and update the "
                             "characterization section of the trajectory "
                             "file")
    args = parser.parse_args(argv)

    if args.families_only:
        print("measuring new predictor families (python vs array)",
              flush=True)
        section = measure_new_families()
        existing = (json.loads(args.output.read_text())
                    if args.output.exists() else {})
        old = existing.get("new_families")
        if (not args.fresh and old and old.get("bit_identical")
                and section["bit_identical"]):
            # Best-of per key across harness invocations, same policy as
            # the branches_per_sec sections on this noisy box.
            for field in ("python_branches_per_sec",
                          "array_branches_per_sec"):
                for key, val in old.get(field, {}).items():
                    if key in section[field]:
                        section[field][key] = max(section[field][key], val)
            section["speedup_vs_python"] = {
                key: round(section["array_branches_per_sec"][key]
                           / section["python_branches_per_sec"][key], 1)
                for key in section["speedup_vs_python"]}
        existing["new_families"] = section
        args.output.write_text(json.dumps(existing, indent=2) + "\n")
        print(f"wrote {args.output}")
        return 0 if section["bit_identical"] else 1

    if args.characterize_only:
        print("measuring characterization digest + winner hit rate",
              flush=True)
        section = measure_characterization()
        existing = (json.loads(args.output.read_text())
                    if args.output.exists() else {})
        existing["characterization"] = section
        args.output.write_text(json.dumps(existing, indent=2) + "\n")
        print(f"wrote {args.output}")
        return 0 if section["winner_hits"] >= 10 else 1

    if args.server_only:
        print("measuring server sweep (daemon-served fig09 grid vs serial)",
              flush=True)
        sweep = measure_server_sweep()
        existing = (json.loads(args.output.read_text())
                    if args.output.exists() else {})
        old = existing.get("server_sweep")
        if (not args.fresh and old
                and old.get("byte_identical") and sweep["byte_identical"]
                and old.get("latency_vs_ping_p50", float("inf"))
                < sweep["latency_vs_ping_p50"]):
            sweep = old  # best-of across harness invocations
        existing["server_sweep"] = sweep
        args.output.write_text(json.dumps(existing, indent=2) + "\n")
        print(f"wrote {args.output}")
        return 0 if sweep["byte_identical"] else 1

    if args.distributed_only:
        print("measuring distributed sweep (loopback TCP fleets vs serial)",
              flush=True)
        sweep = measure_distributed_sweep()
        existing = (json.loads(args.output.read_text())
                    if args.output.exists() else {})
        old = existing.get("distributed_sweep")
        if not args.fresh and old and old.get("byte_identical") \
                and sweep["byte_identical"]:
            # Best-of across harness invocations, but never let a
            # projected section outrank a measured one: a recording from
            # a multi-core host is categorically better scaling evidence
            # than any single-core projection.
            old_basis = old.get("gate_basis") or (
                "measured" if old.get("host_cpus", 0) >= 2 else "projected")
            if old_basis == "measured" and sweep["gate_basis"] == "projected":
                sweep = old
            elif (old_basis == sweep["gate_basis"]
                    and old.get("workers", {}).get("2", {}).get("speedup", 0)
                    > sweep["workers"].get("2", {}).get("speedup", 0)):
                sweep = old
        existing["distributed_sweep"] = sweep
        args.output.write_text(json.dumps(existing, indent=2) + "\n")
        print(f"wrote {args.output}")
        return 0 if sweep["byte_identical"] else 1

    if args.sweep_only:
        print("measuring batched sweep (per-job runner vs run_batch)",
              flush=True)
        sweep = measure_batched_sweep()
        existing = (json.loads(args.output.read_text())
                    if args.output.exists() else {})
        old = existing.get("batched_sweep")
        if (not args.fresh and old
                and old.get("speedup", 0) > sweep["speedup"]
                and old.get("byte_identical")
                and sweep["byte_identical"]):
            sweep = old  # best-of across harness invocations
        existing["batched_sweep"] = sweep
        args.output.write_text(json.dumps(existing, indent=2) + "\n")
        print(f"wrote {args.output}")
        return 0 if sweep["byte_identical"] else 1

    after = measure(quick=args.quick, jobs=args.jobs)
    if args.quick:
        print(json.dumps(after, indent=2))
        return 0

    existing = {}
    if args.output.exists():
        existing = json.loads(args.output.read_text())
    if not args.fresh and "after" in existing:
        # Best-of across harness invocations, for the same reason as
        # best-of-N within one: on a shared box a whole run can land in
        # a throttled phase, and the maximum is the honest estimate.
        old = existing["after"]
        for key, val in old.get("branches_per_sec", {}).items():
            cur = after["branches_per_sec"].get(key)
            if cur is None or val > cur:
                after["branches_per_sec"][key] = val
        if "fig09_seconds" in old and (
                "fig09_seconds" not in after
                or old["fig09_seconds"] < after["fig09_seconds"]):
            after["fig09_seconds"] = old["fig09_seconds"]

    print("measuring array engine", flush=True)
    array_section = measure_array_engine()
    old_array = existing.get("array_engine")
    if (not args.fresh and old_array
            and old_array.get("bit_identical")
            and array_section["bit_identical"]):
        # Same best-of-across-invocations policy as the Python numbers.
        for key, val in old_array.get("branches_per_sec", {}).items():
            cur = array_section["branches_per_sec"].get(key)
            if cur is None or val > cur:
                array_section["branches_per_sec"][key] = val
    array_section["speedup_vs_python"] = {
        key: round(val / after["branches_per_sec"][key], 2)
        for key, val in array_section["branches_per_sec"].items()
        if after["branches_per_sec"].get(key)
    }
    before = existing.get("before") or after
    payload = {
        "meta": {
            "trace": TRACE_NAME,
            "trace_instructions": TRACE_INSTRUCTIONS,
            "fig09_workloads": FIG09_WORKLOADS,
            "fig09_instructions": FIG09_INSTRUCTIONS,
            "host_cpus": os.cpu_count(),
            "python": platform.python_version(),
            "fig09_jobs": args.jobs,
        },
        "before": before,
        "after": after,
        "speedup": _speedups(before, after),
        "array_engine": array_section,
    }
    for section in ("batched_sweep", "distributed_sweep", "server_sweep",
                    "notes"):
        if section in existing:
            payload[section] = existing[section]
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main())
