"""Table III: access latency and energy of LLBP structures."""

import pytest

from repro.experiments import tables


def test_table3_latency_energy(benchmark, report):
    rows = benchmark.pedantic(tables.table3, rounds=1, iterations=1)
    report(
        "Table III — relative access latency and energy (vs 64K TSL)",
        "64K:1.0/2cyc/1.0; 512K:2.55/4/4.58; LLBP:2.68/4/4.44; "
        "CD:0.8/1/0.3; PB:0.62/1/0.25",
        tables.format_table3(rows),
    )
    by_name = {r["component"]: r for r in rows}
    # The model is calibrated to reproduce Table III exactly.
    assert by_name["64KiB TSL"]["rel_energy"] == pytest.approx(1.0)
    assert by_name["512KiB TSL"]["rel_energy"] == pytest.approx(4.58)
    assert by_name["LLBP"]["rel_energy"] == pytest.approx(4.44)
    assert by_name["CD"]["rel_energy"] == pytest.approx(0.30)
    assert by_name["PB (64-entries)"]["rel_energy"] == pytest.approx(0.25)
    assert by_name["64KiB TSL"]["cycles"] == 2
    assert by_name["512KiB TSL"]["cycles"] == 4
    assert by_name["LLBP"]["cycles"] == 4
    assert by_name["CD"]["cycles"] == 1
    assert by_name["PB (64-entries)"]["cycles"] == 1
