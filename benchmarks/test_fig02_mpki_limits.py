"""Fig 2: MPKI of 64K TSL vs the infinite-capacity limits."""

from repro.experiments import fig02


def test_fig02_mpki_limits(benchmark, report):
    rows = benchmark.pedantic(fig02.run, rounds=1, iterations=1)
    reductions = fig02.reductions(rows)
    body = fig02.format_rows(rows) + "\nreductions vs 64K TSL: " + ", ".join(
        f"{k}={v:.1f}%" for k, v in reductions.items()
    )
    report(
        "Figure 2 — TAGE in the limit",
        "64K TSL avg 2.91 MPKI; Inf TSL -36.5%; Inf TAGE captures ~87% of it",
        body,
    )
    mean = rows[-1]
    # Shape: meaningful headroom from unbounded capacity.
    assert reductions["inf-tsl"] > 15.0
    assert reductions["inf-tage"] > 10.0
    # Inf TAGE captures the majority of Inf TSL's opportunity.
    assert reductions["inf-tage_share_of_inf-tsl"] > 40.0
    # Absolute MPKI in a server-like range.
    assert 0.5 < mean["tsl64"] < 15.0
