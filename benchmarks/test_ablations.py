"""Ablations of the design choices DESIGN.md §4 calls out.

Not a paper figure — these isolate the knobs the paper discusses in
prose: confidence-based vs LRU context-directory replacement (§V-D
step 1), pattern-set bucketing (§V-D), the weak-override guard and the
provider-training policy (our documented deviations).
"""

from repro.common.stats import mean
from repro.experiments.common import experiment_workloads, format_table
from repro.experiments.runner import get_result

VARIANTS = {
    "evaluated design (0lat)": "llbp:lat0",
    "LRU CD replacement": "llbp:lat0,lru",
    "no bucketing": "llbp:lat0,unbucketed",
    "no weak-override guard": "llbp:lat0,noguard",
    "exclusive provider training (paper §V-D)": "llbp:lat0,exclusive",
}


def run_ablations(workloads):
    rows = []
    for label, key in VARIANTS.items():
        reductions = []
        for workload in workloads:
            base = get_result(workload, "tsl64")
            reductions.append(get_result(workload, key).mpki_reduction_vs(base))
        rows.append({"variant": label, "mpki_reduction_pct": mean(reductions)})
    return rows


def test_ablations(benchmark, report):
    workloads = experiment_workloads()[:2]
    rows = benchmark.pedantic(run_ablations, args=(workloads,),
                              rounds=1, iterations=1)
    report(
        "Ablations — LLBP design choices (MPKI reduction vs 64K TSL)",
        "each row disables one mechanism of the evaluated design",
        format_table(rows, ["variant", "mpki_reduction_pct"]),
    )
    table = {r["variant"]: r["mpki_reduction_pct"] for r in rows}
    base = table["evaluated design (0lat)"]
    # The evaluated design must be at least competitive with each ablation.
    assert base >= table["no weak-override guard"] - 0.5
    assert base >= table["exclusive provider training (paper §V-D)"] - 0.5
    assert base > 0.0
