"""Fig 5: patterns per context vs context depth W."""

from repro.experiments import fig05


def test_fig05_context_locality(benchmark, report):
    rows = benchmark.pedantic(fig05.run, rounds=1, iterations=1)
    report(
        "Figure 5 — patterns per (branch, context) vs window depth W",
        "W=0: p50 298 / p95 2384; W=8: 2 / 25; W=32: 1 / 9",
        fig05.format_rows(rows),
    )
    by_window = {r["W"]: r for r in rows}

    # Deeper contexts slice the pattern space: p95 falls monotonically-ish
    # and by a large factor from W=0 to W=32.
    assert by_window[32]["p95"] <= by_window[8]["p95"] <= by_window[0]["p95"]
    assert by_window[0]["p95"] >= 4 * max(1, by_window[32]["p95"])
    # At deep W most contexts need only a handful of patterns — the
    # property the 16-pattern set design rests on.
    assert by_window[32]["p95"] <= 16
    # Context count grows with depth.
    assert by_window[32]["contexts"] >= by_window[2]["contexts"]
