"""Table I: the workload suite."""

from repro.experiments import tables
from repro.workloads.catalog import workload_names


def test_table1_workloads(benchmark, report):
    rows = benchmark.pedantic(
        tables.table1, kwargs={"include_trace_stats": False},
        rounds=1, iterations=1,
    )
    report(
        "Table I — workloads (synthetic analogues, DESIGN.md §1)",
        "14 server workloads: NodeApp, PHPWiki, DaCapo, BenchBase, "
        "Renaissance, 4 Google production traces",
        tables.format_table1(rows),
    )
    assert len(rows) == 14
    assert [r["workload"] for r in rows] == workload_names()
    assert all(r["description"] for r in rows)
    # The Google-trace analogues carry the largest complex-branch budgets.
    by_name = {r["workload"]: r for r in rows}
    assert by_name["Charlie"]["complex_sites"] > by_name["Kafka"]["complex_sites"]
