"""Fig 12: access-frequency-weighted energy relative to 64K TSL."""

import pytest

from repro.experiments import fig12


def test_fig12_energy(benchmark, report):
    rows = benchmark.pedantic(fig12.run, rounds=1, iterations=1)
    report(
        "Figure 12 — weighted energy (relative to 64K TSL)",
        "LLBP structures ≈ 0.51-0.57x; LLBP total ≈ 1.53x; 512K TSL ≈ 4.5x",
        fig12.format_rows(rows),
    )
    by_design = {r["design"]: r for r in rows}
    base = by_design["64KiB TSL"]["total_rel"]
    assert base == pytest.approx(1.0)

    llbp64 = by_design["64-Entry PB"]["total_rel"]
    # LLBP adds far less energy than naive 8x scaling.
    assert llbp64 < by_design["512KiB TAGE"]["total_rel"] / 2
    assert 1.1 < llbp64 < 2.5
    # The LLBP-only structures cost a fraction of one TSL access stream.
    structures = (by_design["64-Entry PB"]["CD"]
                  + by_design["64-Entry PB"]["PB"]
                  + by_design["64-Entry PB"]["LLBP"])
    assert 0.2 < structures < 1.2
