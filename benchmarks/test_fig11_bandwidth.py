"""Fig 11: LLBP <-> PB transfer bandwidth vs PB size."""

from repro.experiments import fig11


def test_fig11_bandwidth(benchmark, report):
    rows = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    report(
        "Figure 11 — pattern-set traffic (bits/instruction)",
        "16-entry PB: 9.9 read + 2.2 write; 64-entry: -19% total; "
        "256-entry: < 8 bits/instr; L1-I miss traffic as yardstick "
        "(synthetic code footprints understate L1-I traffic — see EXPERIMENTS.md)",
        fig11.format_rows(rows),
    )
    by_structure = {r["structure"]: r for r in rows}
    pb16 = by_structure["16-entry PB"]["total_bits_per_instr"]
    pb64 = by_structure["64-entry PB"]["total_bits_per_instr"]
    pb256 = by_structure["256-entry PB"]["total_bits_per_instr"]

    # A bigger PB filters more traffic.
    assert pb16 > pb64 > pb256
    # Writeback traffic is the smaller share (paper: ~20% of reads).
    r64 = by_structure["64-entry PB"]
    assert r64["write_bits_per_instr"] < r64["read_bits_per_instr"]
    # Traffic is bounded — far below one pattern set per instruction.
    assert pb16 < 288
