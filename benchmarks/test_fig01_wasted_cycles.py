"""Fig 1: execution cycles wasted on conditional mispredictions."""

from repro.experiments import fig01


def test_fig01_wasted_cycles(benchmark, report):
    rows = benchmark.pedantic(fig01.run, rounds=1, iterations=1)
    report(
        "Figure 1 — wasted execution cycles (64K TSL + analytic core)",
        "3.6-20% per workload, 9.2% average (Sapphire Rapids top-down)",
        fig01.format_rows(rows),
    )
    gmean = rows[-1]["wasted_cycles_pct"]
    # Shape: a significant chunk of cycles is lost to mispredictions.
    assert 2.0 < gmean < 30.0
    per_workload = [r["wasted_cycles_pct"] for r in rows[:-1]]
    assert max(per_workload) > min(per_workload)  # workloads differ
