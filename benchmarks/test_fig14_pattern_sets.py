"""Fig 14: pattern-set count / size sensitivity (LLBP-0Lat, unbucketed)."""

from repro.experiments import fig14


def test_fig14_pattern_sets(benchmark, report):
    rows = benchmark.pedantic(fig14.run, rounds=1, iterations=1)
    report(
        "Figure 14 — contexts x patterns-per-set (capacities / CAPACITY_SCALE)",
        "paper: 16K ctx x 8 pat = 11%; 16 pat +2.6%; 32/64 diminish; "
        "reduction scales with contexts to ~14K (512KiB design point)",
        fig14.format_rows(rows),
    )
    table = {(r["contexts"], r["patterns_per_set"]): r["mpki_reduction_pct"]
             for r in rows}
    contexts = sorted({c for c, _ in table})
    patterns = sorted({p for _, p in table})

    # More contexts helps (or at worst saturates) at fixed set size.
    small, large = contexts[0], contexts[-1]
    assert table[(large, 16)] >= table[(small, 16)] - 1.0

    # Growing the set beyond 16 gives diminishing returns per doubling.
    if 32 in patterns:
        gain_8_to_16 = table[(large, 16)] - table[(large, 8)]
        gain_16_to_32 = table[(large, 32)] - table[(large, 16)]
        assert gain_16_to_32 <= gain_8_to_16 + 1.5

    # Capacity column is consistent with the geometry.
    by_row = {(r["contexts"], r["patterns_per_set"]): r["capacity_kib"]
              for r in rows}
    assert by_row[(large, 16)] == 2 * by_row[(large, 8)]
