#!/usr/bin/env python
"""Quick engine-throughput regression gate (< 60 s).

Run from the repo root::

    python scripts/bench.py            # compare against committed baseline
    python scripts/bench.py --update   # accept current numbers as baseline
    python scripts/bench.py --smoke    # CI mode: reduced trace, relative gate

Measures branches/sec for a small set of predictor keys on the same trace
configuration as ``benchmarks/perf/harness.py`` and compares each key
against the committed ``BENCH_engine.json`` ``after`` numbers.  Exits
non-zero if any key regresses by more than ``--threshold`` (default 20%).

Both modes also gate the shared-trace batched engine
(``run_simulation_batch``): a tsl64+llbp batch must stay bit-identical
to its serial equivalents and must not be slower than running them
serially (the committed ``batched_sweep`` section records the full
multi-key speedup; see ``harness.py --sweep-only``).

Both modes also gate the committed ``distributed_sweep`` section (see
``harness.py --distributed-only``): the recorded fig09 sweep over
loopback TCP workers must be byte-identical to serial and hold the
>=1.6x / 0.8-efficiency scaling floor on 2 workers (measured when the
recording host had >=2 CPUs, projected from the 1-worker overhead
otherwise).  This check is deterministic — no worker fleets are spawned
by the gate itself; the live distributed paths run in the CI
``test-distributed`` leg.

Both modes also gate the committed ``server_sweep`` section (see
``harness.py --server-only``): the recorded daemon-served fig09 grid
must be byte-identical to serial with a >=200-job burst on record, and
a live in-process daemon must serve a warm burst with a p50 latency
within 3x headroom of the committed ping-normalized ratio (the ping RTT
is the null: framing + scheduling with no simulation, so machine speed
cancels out).

Both modes also gate the design-space exploration harness
(``repro.explore``): the fixed-seed smoke search must reproduce the
committed golden Pareto frontier (``tests/explore/golden_frontier.json``)
byte-identically through the real CLI.

Both modes additionally gate the array engine (``repro.sim.array``):
bit-identity to the Python engine is a hard failure in either mode; the
full gate also checks the committed ``array_engine`` numbers hold the
≥5x floor over the committed Python ``after`` numbers and that a live
measurement stays within the threshold of them, while the smoke gate
compares the array/engine-null throughput ratio against the committed
one so runner speed cancels out.

``--smoke`` is for CI runners whose absolute speed has nothing to do with
the machine that produced the committed baseline: it uses a reduced
branch count and gates on each key's throughput *relative to*
``engine-null`` (the no-op-predictor loop measured in the same run), so a
hot-loop regression in one predictor family still fails the PR while an
overall slow runner does not.  The smoke threshold is looser (default
50%) because short runs on shared runners are noisy.

The box this runs on is noisy, so a key that lands below the bar gets one
best-of retry with more reps before the gate fails; use the full harness
(``benchmarks/perf/harness.py``) for numbers worth committing.

Both modes honour ``REPRO_TELEMETRY=DIR``: the engine then logs per-phase
events that ``scripts/report.py DIR -o telemetry_summary.json`` turns
into the summary artifact CI uploads.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

BASELINE = REPO_ROOT / "BENCH_engine.json"

# Keep the quick gate under a minute: the two cheap keys bound the engine
# loop and table predictors, the two expensive ones bound the TAGE-SC-L
# and LLBP hot paths where the optimization work lives.
KEYS = ("engine-null", "bimodal", "tsl64", "llbp")

#: Smoke-mode trace length: enough branches for a stable rate, small
#: enough that the whole job stays in low single-digit minutes on a
#: shared CI runner.
SMOKE_INSTRUCTIONS = 150_000

#: Keys for the batched-engine gate: the pair with the deepest sharing
#: (llbp's internal TSL duplicates tsl64's fold and lookup geometry).
BATCH_KEYS = ("tsl64", "llbp")


def _gate_batched(trace, committed: dict) -> int:
    """Gate the shared-trace batched path: identity is a hard failure,
    and the batch must not have become slower than running its members
    serially (the committed sweep records the real multi-key speedup;
    this quick check only needs to catch a batched-path regression, so
    the floor is 1.0x after one best-of retry on this noisy box).
    """
    from benchmarks.perf.harness import measure_batched_pass

    serial_s, batched_s, identical = measure_batched_pass(BATCH_KEYS, trace)
    if not identical:
        print(f"FAIL: batched {'+'.join(BATCH_KEYS)} results diverged "
              "from serial run_simulation")
        return 1
    speedup = serial_s / batched_s
    if speedup < 1.0:
        serial_s, batched_s, identical = measure_batched_pass(
            BATCH_KEYS, trace, reps=3)
        if not identical:
            print("FAIL: batched results diverged from serial on retry")
            return 1
        speedup = serial_s / batched_s
    recorded = committed.get("speedup")
    status = "ok" if speedup >= 1.0 else "REGRESSED"
    print(f"  batched      {speedup:.2f}x vs serial (committed sweep: "
          f"{recorded}x)  bit-identical  {status}")
    if status != "ok":
        print("FAIL: batched pass slower than serial equivalents")
        return 1
    return 0


#: Acceptance floor for the committed array-engine numbers: the array
#: engine must be at least this many times faster than the committed
#: Python-engine "after" numbers for the hot predictor families.
ARRAY_SPEEDUP_FLOOR = 5.0
ARRAY_GATE_KEYS = ("tsl64", "llbp")

#: Acceptance floors for the committed distributed sweep: 2 loopback
#: workers must deliver >=1.6x over cold serial (>=0.8 scaling
#: efficiency).  On a single-core recording host the measured 2-worker
#: speedup is physically capped at ~1x, so the gate falls back to the
#: overhead-derived ``projected_speedup_2_workers`` (see
#: ``harness.measure_distributed_sweep``).
DISTRIBUTED_SPEEDUP_FLOOR = 1.6
DISTRIBUTED_EFFICIENCY_FLOOR = 0.8


def _gate_distributed(data: dict) -> int:
    """Gate the committed ``distributed_sweep`` section (deterministic —
    no fleets are spawned here; the CI ``test-distributed`` leg runs the
    live byte-identity checks).  Byte-identity is a hard failure; the
    scaling floor is checked against the measured 2-worker numbers when
    the recording host had >=2 CPUs, else against the projection.
    """
    sweep = data.get("distributed_sweep")
    if not sweep:
        print("no committed distributed_sweep section; run "
              "benchmarks/perf/harness.py --distributed-only to record one")
        return 1
    if not sweep.get("byte_identical"):
        print("FAIL: committed distributed sweep was not byte-identical "
              "to serial")
        return 1

    two = sweep.get("workers", {}).get("2", {})
    # The recorded section says which number to trust (harness writes
    # gate_basis at record time); sections from before that field fall
    # back to the recording host's CPU count — measured whenever the
    # host could actually run 2 workers on separate cores.
    recorded_basis = sweep.get("gate_basis") or (
        "measured" if sweep.get("host_cpus", 0) >= 2 and two
        else "projected")
    if recorded_basis == "measured":
        speedup, basis = two.get("speedup", 0.0), "measured"
        efficiency = two.get("efficiency", 0.0)
    else:
        speedup = sweep.get("projected_speedup_2_workers", 0.0)
        efficiency, basis = speedup / 2, "projected (1-core host)"
    ok = (speedup >= DISTRIBUTED_SPEEDUP_FLOOR
          and efficiency >= DISTRIBUTED_EFFICIENCY_FLOOR)
    print(f"  distributed  {speedup:.2f}x on 2 workers ({basis}, "
          f"efficiency {efficiency:.2f})  byte-identical  "
          f"{'ok' if ok else 'REGRESSED'}")
    if not ok:
        print(f"FAIL: distributed sweep below the "
              f"{DISTRIBUTED_SPEEDUP_FLOOR}x / "
              f"{DISTRIBUTED_EFFICIENCY_FLOOR} efficiency floor")
        return 1
    return 0


#: Server gate configuration: the committed ``server_sweep`` section
#: must show byte-identity and a burst at least this deep, and a live
#: warm burst's p50 latency (normalized by the same run's ping-RTT p50
#: so machine speed cancels out) must stay within the headroom of the
#: committed ratio.  The headroom is loose because a warm serve is only
#: a few times more work than a ping — small absolute jitter moves the
#: ratio a lot on a shared box — and a miss gets one retry.
SERVER_BURST_FLOOR = 200
SERVER_LATENCY_HEADROOM = 3.0
SERVER_SMOKE_JOBS = 60
SERVER_SMOKE_KEYS = ("gshare", "bimodal")


def _measure_server_ratio(instructions: int) -> float:
    """Warm-cache served-latency p50 over ping p50 on a live daemon."""
    from repro.server import ServerConfig, ServerThread
    from repro.server.client import ServerClient
    from repro.server.loadgen import build_jobs, measure_ping, run_load

    with ServerThread(ServerConfig.from_env(port=0)) as running:
        with ServerClient(running.address, tenant="bench") as client:
            client.submit([("Kafka", key, instructions)
                           for key in SERVER_SMOKE_KEYS])  # warm the cache
        burst = build_jobs(["Kafka"], list(SERVER_SMOKE_KEYS),
                           instructions, SERVER_SMOKE_JOBS)
        summary = run_load(running.address, burst, mode="closed",
                           clients=3, detail="digest", tenant="bench")
        ping = measure_ping(running.address, count=30)
    if summary["errors"] or summary["jobs"] != SERVER_SMOKE_JOBS:
        raise RuntimeError(f"server burst lost jobs: {summary['jobs']} "
                           f"served, {summary['errors']} errors")
    return summary["latency_seconds"]["p50"] / max(ping["p50"], 1e-9)


def _gate_server(data: dict, instructions: int) -> int:
    """Gate the sweep daemon: the committed ``server_sweep`` section
    must be byte-identical with a >=200-job burst and full percentiles
    (deterministic checks on the recorded trajectory), and a live
    in-process daemon must serve a warm burst with a p50/ping-p50 ratio
    within ``SERVER_LATENCY_HEADROOM`` of the committed one.
    """
    sweep = data.get("server_sweep")
    if not sweep:
        print("no committed server_sweep section; run "
              "benchmarks/perf/harness.py --server-only to record one")
        return 1
    if not sweep.get("byte_identical"):
        print("FAIL: committed server sweep was not byte-identical to "
              "serial")
        return 1
    if sweep.get("burst_jobs", 0) < SERVER_BURST_FLOOR:
        print(f"FAIL: committed server burst of {sweep.get('burst_jobs')} "
              f"jobs is below the {SERVER_BURST_FLOOR}-job floor")
        return 1
    latency = sweep.get("latency_seconds", {})
    committed_ratio = sweep.get("latency_vs_ping_p50")
    if not committed_ratio or not all(
            latency.get(p) for p in ("p50", "p95", "p99")):
        print("FAIL: committed server sweep is missing latency "
              "percentiles or the ping-normalized ratio")
        return 1

    ratio = _measure_server_ratio(instructions)
    bar = committed_ratio * SERVER_LATENCY_HEADROOM
    if ratio > bar:
        print(f"  server       ratio {ratio:.2f}x above bar, retrying")
        ratio = min(ratio, _measure_server_ratio(instructions))
    status = "ok" if ratio <= bar else "REGRESSED"
    print(f"  server       p50 {ratio:.2f}x ping vs committed "
          f"{committed_ratio:.2f}x (bar {bar:.2f}x)  "
          f"byte-identical  {status}")
    if status != "ok":
        print("FAIL: warm server latency regressed beyond the "
              f"{SERVER_LATENCY_HEADROOM:.0f}x headroom over the "
              "committed ping-normalized ratio")
        return 1
    return 0


#: The explore gate's fixture: the frontier the pinned smoke search
#: (``python -m repro.explore --budget smoke``) must reproduce byte for
#: byte.  The search pins its own workloads and trace lengths, so the
#: check is deterministic regardless of REPRO_WORKLOADS / REPRO_ENGINE.
EXPLORE_GOLDEN = REPO_ROOT / "tests" / "explore" / "golden_frontier.json"


def _gate_explore() -> int:
    """Gate the design-space exploration harness: the fixed-seed smoke
    search must reproduce the committed golden Pareto frontier
    byte-identically, through the real ``python -m repro.explore`` CLI.
    Any drift in the halving schedule, shuffle, MPKI accounting, the
    storage model or the artifact layout fails here.
    """
    import os
    import subprocess

    if not EXPLORE_GOLDEN.exists():
        print(f"no golden frontier at {EXPLORE_GOLDEN}; run "
              "pytest tests/explore/test_golden_frontier.py "
              "--update-golden to record one")
        return 1
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.explore", "--budget", "smoke",
         "--check", str(EXPLORE_GOLDEN), "--quiet"],
        env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        print("FAIL: smoke explore search did not reproduce the golden "
              "frontier")
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        return 1
    print("  explore      smoke frontier byte-identical to committed "
          "golden  ok")
    return 0


def _gate_array(trace, data: dict, threshold: float) -> int:
    """Gate the array engine: identity is a hard failure; throughput is
    gated two ways — the *committed* ``array_engine`` numbers must hold
    the ≥5x acceptance floor over the committed Python ``after`` numbers
    (a deterministic check on the recorded trajectory), and the *live*
    measurement must stay within ``threshold`` of the committed array
    numbers (with one best-of retry, same policy as every other gate on
    this noisy box).
    """
    from benchmarks.perf.harness import measure_array_engine

    committed = data.get("array_engine", {})
    committed_rates = committed.get("branches_per_sec", {})
    after_rates = data.get("after", {}).get("branches_per_sec", {})
    if not committed_rates:
        print("no committed array_engine section; run "
              "benchmarks/perf/harness.py to record one")
        return 1

    failures = []
    for key in ARRAY_GATE_KEYS:
        base, python_rate = committed_rates.get(key), after_rates.get(key)
        if not base or not python_rate:
            print(f"  array:{key:<6} missing committed numbers")
            failures.append(key)
            continue
        floor = python_rate * ARRAY_SPEEDUP_FLOOR
        if base < floor:
            print(f"  array:{key:<6} committed {base:,} < {floor:,.0f} "
                  f"({ARRAY_SPEEDUP_FLOOR:.0f}x python after)  REGRESSED")
            failures.append(key)

    measured = measure_array_engine(ARRAY_GATE_KEYS, reps=2, trace=trace)
    if not measured["bit_identical"]:
        print("FAIL: array engine diverged from the Python engine")
        return 1
    for key in ARRAY_GATE_KEYS:
        base = committed_rates.get(key)
        if not base or key in failures:
            continue
        now = measured["branches_per_sec"][key]
        if now < base * (1 - threshold):
            print(f"  array:{key:<6} below threshold, retrying")
            retry = measure_array_engine((key,), reps=4, trace=trace)
            if not retry["bit_identical"]:
                print("FAIL: array engine diverged on retry")
                return 1
            now = max(now, retry["branches_per_sec"][key])
        status = "ok" if now >= base * (1 - threshold) else "REGRESSED"
        print(f"  array:{key:<6} {now:>12,} vs committed {base:>12,}  "
              f"({now / base:.2f}x)  bit-identical  {status}")
        if status != "ok":
            failures.append(key)

    if failures:
        print(f"FAIL: array engine gate failed for {', '.join(failures)}")
        return 1
    return 0


def _smoke_array(trace, data: dict, threshold: float) -> int:
    """Smoke-mode array gate: bit-identity (hard) plus throughput
    relative to this run's engine-null, compared against the committed
    array/null ratio — absolute speed of the runner cancels out.
    """
    from benchmarks.perf.harness import (measure_array_engine,
                                         measure_branches_per_sec)

    committed_rates = data.get("array_engine", {}).get("branches_per_sec", {})
    null_base = data.get("after", {}).get("branches_per_sec", {}).get(
        "engine-null")
    if not committed_rates or not null_base:
        print("no committed array_engine/engine-null numbers; skipping "
              "array smoke gate")
        return 0

    null_now = measure_branches_per_sec(("engine-null",), reps=2,
                                        trace=trace)["engine-null"]
    measured = measure_array_engine(ARRAY_GATE_KEYS, reps=2, trace=trace)
    if not measured["bit_identical"]:
        print("FAIL: array engine diverged from the Python engine")
        return 1

    failures = []
    for key in ARRAY_GATE_KEYS:
        base = committed_rates.get(key)
        if not base:
            continue
        base_ratio = base / null_base
        now_ratio = measured["branches_per_sec"][key] / null_now
        if now_ratio < base_ratio * (1 - threshold):
            retry = measure_array_engine((key,), reps=4, trace=trace)
            if not retry["bit_identical"]:
                print("FAIL: array engine diverged on retry")
                return 1
            now_ratio = max(now_ratio,
                            retry["branches_per_sec"][key] / null_now)
        status = ("ok" if now_ratio >= base_ratio * (1 - threshold)
                  else "REGRESSED")
        print(f"  array:{key:<6} {now_ratio:.3f}x of engine-null vs "
              f"baseline {base_ratio:.3f}x  bit-identical  {status}")
        if status != "ok":
            failures.append(key)
    if failures:
        print(f"FAIL: array smoke gate failed for {', '.join(failures)}")
        return 1
    return 0


#: The scenario-diversity families added with the characterization
#: pipeline.  Their committed array numbers must beat their committed
#: Python numbers by at least the floor (measured 4.6x for Bi-Mode and
#: over 10x for the perceptron on the reference box; the floor leaves
#: room for slower hosts re-recording the trajectory).
NEW_FAMILY_KEYS = ("bimode", "percep")
NEW_FAMILY_SPEEDUP_FLOOR = 2.0


def _gate_new_families(trace, data: dict) -> int:
    """Gate the Bi-Mode / perceptron families: live bit-identity against
    the Python oracle is a hard failure, and the *committed*
    ``new_families`` numbers must hold the array-over-python floor — a
    deterministic check on the recorded trajectory, so the gate runs
    identically in full and smoke modes.
    """
    from benchmarks.perf.harness import measure_array_engine

    committed = data.get("new_families", {})
    if not committed:
        print("no committed new_families section; run "
              "benchmarks/perf/harness.py --families-only to record one")
        return 1
    if not committed.get("bit_identical"):
        print("FAIL: committed new_families section records divergence")
        return 1

    failures = []
    for key in NEW_FAMILY_KEYS:
        python_rate = committed.get("python_branches_per_sec", {}).get(key)
        array_rate = committed.get("array_branches_per_sec", {}).get(key)
        if not python_rate or not array_rate:
            print(f"  family:{key:<6} missing committed numbers")
            failures.append(key)
            continue
        if array_rate < python_rate * NEW_FAMILY_SPEEDUP_FLOOR:
            print(f"  family:{key:<6} committed array {array_rate:,} < "
                  f"{NEW_FAMILY_SPEEDUP_FLOOR:.0f}x python "
                  f"{python_rate:,}  REGRESSED")
            failures.append(key)
        else:
            print(f"  family:{key:<6} committed array "
                  f"{array_rate / python_rate:.1f}x python  ok")

    measured = measure_array_engine(NEW_FAMILY_KEYS, reps=2, trace=trace)
    if not measured["bit_identical"]:
        print("FAIL: a new-family array implementation diverged from the "
              "Python engine")
        return 1
    if failures:
        print(f"FAIL: new-family gate failed for {', '.join(failures)}")
        return 1
    return 0


#: The characterization acceptance floor: the metrics-only rule must
#: name the measured-best family on at least this many of the 14
#: catalog workloads (asserted live in tests/analysis, pinned here on
#: the committed trajectory).
CHARACTERIZE_WINNER_FLOOR = 10


def _gate_characterization(data: dict) -> int:
    """Gate the characterization pipeline: the pinned metrics-only
    artifact must hash to the committed digest (the byte-determinism
    contract CI also diffs across backends), and the committed winner
    hit rate must hold the acceptance floor.  Both checks are
    deterministic, so the gate runs identically in full and smoke modes.
    """
    from repro.analysis.characterize import (BENCH_INSTRUCTIONS,
                                             BENCH_WORKLOADS, bench_digest)

    committed = data.get("characterization", {})
    if not committed:
        print("no committed characterization section; run "
              "benchmarks/perf/harness.py --characterize-only to record one")
        return 1
    expected = committed.get("digest_sha256")
    if (not expected
            or committed.get("digest_workloads") != ",".join(BENCH_WORKLOADS)
            or committed.get("digest_instructions") != BENCH_INSTRUCTIONS):
        print("FAIL: committed characterization section does not pin the "
              "current BENCH_WORKLOADS/BENCH_INSTRUCTIONS; re-record with "
              "benchmarks/perf/harness.py --characterize-only")
        return 1
    digest = bench_digest()
    if digest != expected:
        print(f"FAIL: characterization digest {digest[:16]}... != "
              f"committed {expected[:16]}... (metric or serialisation "
              "drift)")
        return 1
    hits = committed.get("winner_hits", 0)
    total = committed.get("winner_total", 0)
    if hits < CHARACTERIZE_WINNER_FLOOR:
        print(f"FAIL: committed winner hit rate {hits}/{total} is below "
              f"the {CHARACTERIZE_WINNER_FLOOR}-workload floor")
        return 1
    print(f"  characterize digest matches committed ({digest[:16]}...); "
          f"winner rule {hits}/{total}  ok")
    return 0


def _smoke(args, baseline: dict) -> int:
    """Relative gate: key throughput normalized by this run's engine-null."""
    from benchmarks.perf.harness import TRACE_NAME, measure_branches_per_sec
    from repro.workloads.catalog import generate_workload

    trace = generate_workload(TRACE_NAME, SMOKE_INSTRUCTIONS)
    measured = measure_branches_per_sec(KEYS, reps=2, trace=trace)

    null_base = baseline.get("engine-null")
    null_now = measured["engine-null"]
    if not null_base or not null_now:
        print("no engine-null reference; smoke gate needs it — skipping")
        return 0

    failures = []
    for key in KEYS:
        if key == "engine-null":
            continue
        base = baseline.get(key)
        if not base:
            print(f"  {key:<12} no baseline entry, skipping")
            continue
        base_ratio = base / null_base
        now_ratio = measured[key] / null_now
        if now_ratio < base_ratio * (1 - args.threshold):
            print(f"  {key:<12} below threshold, retrying with more reps")
            retry = measure_branches_per_sec((key,), reps=4, trace=trace)
            now_ratio = max(now_ratio, retry[key] / null_now)
        status = ("ok" if now_ratio >= base_ratio * (1 - args.threshold)
                  else "REGRESSED")
        print(f"  {key:<12} {now_ratio:.3f}x of engine-null vs baseline "
              f"{base_ratio:.3f}x  ({now_ratio / base_ratio:.2f})  {status}")
        if status != "ok":
            failures.append(key)

    if failures:
        print(f"FAIL: relative regression in {', '.join(failures)} "
              f"(>{args.threshold:.0%} below baseline ratio)")
        return 1
    if _gate_batched(trace, args.batched_committed):
        return 1
    if _smoke_array(trace, args.data, args.threshold):
        return 1
    if _gate_new_families(trace, args.data):
        return 1
    if _gate_distributed(args.data):
        return 1
    if _gate_server(args.data, SMOKE_INSTRUCTIONS):
        return 1
    if _gate_explore():
        return 1
    if _gate_characterization(args.data):
        return 1
    print("PASS: no key regressed beyond threshold (relative gate)")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=None,
                        help="allowed fractional regression per key "
                             "(default 0.20 = 20%%; 0.50 in --smoke mode)")
    parser.add_argument("--update", action="store_true",
                        help="write measured numbers into the baseline's "
                             "'after' section instead of comparing")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: reduced branch count and a gate on "
                             "throughput relative to engine-null instead "
                             "of absolute branches/sec")
    args = parser.parse_args(argv)
    if args.threshold is None:
        args.threshold = 0.50 if args.smoke else 0.20

    from benchmarks.perf.harness import measure_branches_per_sec

    if args.smoke:
        if not BASELINE.exists():
            print(f"no baseline at {BASELINE}; nothing to gate against")
            return 0
        data = json.loads(BASELINE.read_text())
        args.batched_committed = data.get("batched_sweep", {})
        args.data = data
        print(f"smoke bench: {', '.join(KEYS)} "
              f"({SMOKE_INSTRUCTIONS:,} instructions, relative gate)")
        return _smoke(args, data.get("after", {}).get("branches_per_sec", {}))

    print(f"quick bench: {', '.join(KEYS)}")
    measured = measure_branches_per_sec(KEYS, reps=2)

    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; run benchmarks/perf/harness.py "
              "to create one")
        return 0 if not args.update else 1

    data = json.loads(BASELINE.read_text())
    baseline = data.get("after", {}).get("branches_per_sec", {})

    if args.update:
        for key, val in measured.items():
            baseline[key] = val
        data.setdefault("after", {})["branches_per_sec"] = baseline
        BASELINE.write_text(json.dumps(data, indent=2) + "\n")
        print(f"updated baseline in {BASELINE}")
        return 0

    failures = []
    for key in KEYS:
        base = baseline.get(key)
        if not base:
            print(f"  {key:<12} no baseline entry, skipping")
            continue
        now = measured[key]
        if now < base * (1 - args.threshold):
            # One retry with more reps: a single throttled phase on this
            # box can sink a best-of-2 by well over the threshold.
            print(f"  {key:<12} below threshold, retrying with more reps")
            now = max(now, measure_branches_per_sec((key,), reps=4)[key])
        ratio = now / base
        status = "ok" if now >= base * (1 - args.threshold) else "REGRESSED"
        print(f"  {key:<12} {now:>12,} vs baseline {base:>12,}  "
              f"({ratio:.2f}x)  {status}")
        if status != "ok":
            failures.append(key)

    if failures:
        print(f"FAIL: regression in {', '.join(failures)} "
              f"(>{args.threshold:.0%} below baseline)")
        return 1

    from benchmarks.perf.harness import TRACE_INSTRUCTIONS, TRACE_NAME
    from repro.workloads.catalog import generate_workload

    trace = generate_workload(TRACE_NAME, TRACE_INSTRUCTIONS)
    if _gate_batched(trace, data.get("batched_sweep", {})):
        return 1
    if _gate_array(trace, data, args.threshold):
        return 1
    if _gate_new_families(trace, data):
        return 1
    if _gate_distributed(data):
        return 1
    if _gate_server(data, SMOKE_INSTRUCTIONS):
        return 1
    if _gate_explore():
        return 1
    if _gate_characterization(data):
        return 1
    print("PASS: no key regressed beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
