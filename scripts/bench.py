#!/usr/bin/env python
"""Quick engine-throughput regression gate (< 60 s).

Run from the repo root::

    python scripts/bench.py            # compare against committed baseline
    python scripts/bench.py --update   # accept current numbers as baseline

Measures branches/sec for a small set of predictor keys on the same trace
configuration as ``benchmarks/perf/harness.py`` and compares each key
against the committed ``BENCH_engine.json`` ``after`` numbers.  Exits
non-zero if any key regresses by more than ``--threshold`` (default 20%).

The box this runs on is noisy, so a key that lands below the bar gets one
best-of retry with more reps before the gate fails; use the full harness
(``benchmarks/perf/harness.py``) for numbers worth committing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

BASELINE = REPO_ROOT / "BENCH_engine.json"

# Keep the quick gate under a minute: the two cheap keys bound the engine
# loop and table predictors, the two expensive ones bound the TAGE-SC-L
# and LLBP hot paths where the optimization work lives.
KEYS = ("engine-null", "bimodal", "tsl64", "llbp")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional regression per key "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--update", action="store_true",
                        help="write measured numbers into the baseline's "
                             "'after' section instead of comparing")
    args = parser.parse_args(argv)

    from benchmarks.perf.harness import measure_branches_per_sec

    print(f"quick bench: {', '.join(KEYS)}")
    measured = measure_branches_per_sec(KEYS, reps=2)

    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; run benchmarks/perf/harness.py "
              "to create one")
        return 0 if not args.update else 1

    data = json.loads(BASELINE.read_text())
    baseline = data.get("after", {}).get("branches_per_sec", {})

    if args.update:
        for key, val in measured.items():
            baseline[key] = val
        data.setdefault("after", {})["branches_per_sec"] = baseline
        BASELINE.write_text(json.dumps(data, indent=2) + "\n")
        print(f"updated baseline in {BASELINE}")
        return 0

    failures = []
    for key in KEYS:
        base = baseline.get(key)
        if not base:
            print(f"  {key:<12} no baseline entry, skipping")
            continue
        now = measured[key]
        if now < base * (1 - args.threshold):
            # One retry with more reps: a single throttled phase on this
            # box can sink a best-of-2 by well over the threshold.
            print(f"  {key:<12} below threshold, retrying with more reps")
            now = max(now, measure_branches_per_sec((key,), reps=4)[key])
        ratio = now / base
        status = "ok" if now >= base * (1 - args.threshold) else "REGRESSED"
        print(f"  {key:<12} {now:>12,} vs baseline {base:>12,}  "
              f"({ratio:.2f}x)  {status}")
        if status != "ok":
            failures.append(key)

    if failures:
        print(f"FAIL: regression in {', '.join(failures)} "
              f"(>{args.threshold:.0%} below baseline)")
        return 1
    print("PASS: no key regressed beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
