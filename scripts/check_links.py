#!/usr/bin/env python
"""Docs hygiene gate: every relative link in the docs must resolve.

Run from the repo root::

    python scripts/check_links.py

Scans README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md for markdown
links and inline ``path``-style references to tracked files, and fails
(exit 1) listing every relative link whose target does not exist.
External links (http/https/mailto) and pure anchors are ignored;
``#fragment`` suffixes on relative links are stripped before checking.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md")

#: ``[text](target)`` — the standard markdown inline link.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def _doc_paths():
    paths = [REPO_ROOT / name for name in DOC_FILES]
    paths.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [p for p in paths if p.exists()]


def _broken_links(doc: Path):
    broken = []
    text = doc.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for target in LINK.findall(line):
            if target.startswith(SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (doc.parent / relative).resolve()
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main() -> int:
    docs = _doc_paths()
    failures = 0
    for doc in docs:
        for lineno, target in _broken_links(doc):
            rel = doc.relative_to(REPO_ROOT)
            print(f"{rel}:{lineno}: broken relative link -> {target}")
            failures += 1
    if failures:
        print(f"FAIL: {failures} broken link(s) across {len(docs)} files")
        return 1
    print(f"ok: all relative links resolve ({len(docs)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
