#!/usr/bin/env python
"""Summarize a run's telemetry events.

Run from the repo root::

    python scripts/report.py telemetry/                 # print the report
    python scripts/report.py telemetry/ -o telemetry_summary.json

Takes the directory (or single JSONL file) that a telemetry-enabled run
wrote (``REPRO_TELEMETRY=DIR`` or ``python -m repro.experiments
--telemetry``), merges the per-process event files, and prints the
human-readable report: per-phase simulation timings and branches/sec,
result/trace cache hit rates, parallel worker utilization, LLBP
pattern-buffer and prefetch counters, and per-figure wall clock.

A distributed run (``REPRO_BACKEND=tcp``) additionally gets a
``backend`` section from the ``backend.*`` events: workers joined/left,
task dispatches and completions, trace bytes fetched over the socket,
per-worker busy time and utilization, rejected (digest-mismatched)
results, and degradations to the local backend.

A run served through the sweep daemon (``python -m repro.server``)
additionally gets a ``server`` section from the ``server.*`` events:
submits and jobs by tenant, admission rejections by reason
(tenant-cap / queue-full / draining), served results by source with
submit-to-result latency percentiles and throughput, dispatch batches,
and drain/resume accounting.

A bumpy run additionally gets a ``robustness`` section: retries by
error kind (with total backoff time), job timeouts, workers lost, pool
rebuilds, degradation to serial, injected chaos faults, corrupt cache
entries re-run, and ``--resume`` accounting (how many simulations the
checkpoint journal let the run skip).  A clean run omits the section.

``-o`` additionally writes the machine-readable summary JSON — the
artifact CI uploads and later runs can diff against.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", type=Path,
                        help="telemetry directory (or one events-*.jsonl)")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        metavar="JSON",
                        help="also write the machine-readable summary here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the human-readable report")
    args = parser.parse_args(argv)

    from repro.telemetry import (format_summary, load_events, summarize,
                                 write_summary)

    if not args.path.exists():
        print(f"no telemetry at {args.path}", file=sys.stderr)
        return 2
    events = load_events(args.path)
    if not events:
        print(f"no events found under {args.path}", file=sys.stderr)
        return 2

    summary = summarize(events)
    if not args.quiet:
        print(format_summary(summary))
    if args.output is not None:
        write_summary(summary, args.output)
        if not args.quiet:
            print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
